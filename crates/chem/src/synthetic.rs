//! Synthetic surrogate workloads calibrated to the chemistry kernel.
//!
//! The real Fock build is the ground truth, but sweeping execution
//! models over hundreds of configurations with real integrals would be
//! needlessly slow. This module generates task-cost vectors whose
//! *distribution* matches what the inspector measures on the real kernel
//! (heavily right-skewed, approximately log-normal with a long tail),
//! plus a deterministic [`busy_work`] kernel that burns a controlled
//! number of floating-point operations so real-thread experiments get
//! tasks of precisely known cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Families of synthetic task-cost distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModel {
    /// All tasks cost exactly `scale`.
    Uniform {
        /// The constant cost.
        scale: f64,
    },
    /// Log-normal with the given log-mean and log-stddev — the shape the
    /// screened Fock build exhibits.
    LogNormal {
        /// Mean of ln(cost).
        mu: f64,
        /// Stddev of ln(cost).
        sigma: f64,
    },
    /// Discrete Pareto-ish tail: `cost = scale / u^{1/alpha}` for
    /// uniform `u` — a few giant tasks among many small ones.
    ParetoTail {
        /// Scale of the smallest tasks.
        scale: f64,
        /// Tail exponent; smaller = heavier tail.
        alpha: f64,
    },
    /// Triangular ramp `1..=n` like the triangular quartet loop of the
    /// unchunked Fock build (task `i` covers `i+1` ket pairs).
    Triangular {
        /// Cost multiplier.
        scale: f64,
    },
}

/// Generates `n` task costs from the model, deterministically from
/// `seed`.
pub fn generate_costs(model: CostModel, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_57_5e_ed);
    match model {
        CostModel::Uniform { scale } => vec![scale; n],
        CostModel::LogNormal { mu, sigma } => (0..n)
            .map(|_| {
                let z = standard_normal(&mut rng);
                (mu + sigma * z).exp()
            })
            .collect(),
        CostModel::ParetoTail { scale, alpha } => (0..n)
            .map(|_| {
                let u: f64 = rng.random_range(1e-9..1.0);
                scale / u.powf(1.0 / alpha)
            })
            .collect(),
        CostModel::Triangular { scale } => (0..n).map(|i| scale * (i + 1) as f64).collect(),
    }
}

/// Fits a log-normal [`CostModel`] to measured costs (method of moments
/// in log space). Zero or negative costs are clamped to the smallest
/// positive measurement.
///
/// This is how benches calibrate the synthetic sweeps to the real
/// kernel: run one inspector pass, fit, then generate arbitrarily many
/// matched workloads.
pub fn calibrate_lognormal(measured: &[f64]) -> CostModel {
    assert!(
        !measured.is_empty(),
        "cannot calibrate from no measurements"
    );
    let floor = measured
        .iter()
        .cloned()
        .filter(|&c| c > 0.0)
        .fold(f64::INFINITY, f64::min)
        .min(1.0);
    let logs: Vec<f64> = measured.iter().map(|&c| c.max(floor).ln()).collect();
    let mu = logs.iter().sum::<f64>() / logs.len() as f64;
    let var = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / logs.len() as f64;
    CostModel::LogNormal {
        mu,
        sigma: var.sqrt(),
    }
}

/// Box–Muller standard normal deviate.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Burns approximately `units` cost units of CPU (one unit ≈ 16 FLOPs of
/// dependent arithmetic) and returns a value that must be consumed so
/// the optimizer cannot elide the loop.
///
/// Deterministic, allocation-free, and with a strictly serial dependency
/// chain — wall time scales linearly in `units` regardless of
/// vectorization.
#[inline(never)]
pub fn busy_work(units: u64) -> f64 {
    let mut x = 1.000_000_1f64;
    for _ in 0..units {
        // 16 dependent flops per iteration.
        x = x * 1.000_000_3 + 0.000_000_7;
        x = x * 0.999_999_9 + 0.000_000_1;
        x = x * 1.000_000_1 - 0.000_000_2;
        x = x * 0.999_999_7 + 0.000_000_4;
        x = x * 1.000_000_2 - 0.000_000_3;
        x = x * 0.999_999_8 + 0.000_000_6;
        x = x * 1.000_000_4 - 0.000_000_5;
        x = x * 0.999_999_6 + 0.000_000_8;
        if x > 2.0 {
            x -= 1.0;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::CostStats;

    #[test]
    fn uniform_generates_constant() {
        let c = generate_costs(CostModel::Uniform { scale: 3.5 }, 10, 1);
        assert!(c.iter().all(|&v| v == 3.5));
    }

    #[test]
    fn generation_is_deterministic() {
        let m = CostModel::LogNormal {
            mu: 2.0,
            sigma: 1.0,
        };
        assert_eq!(generate_costs(m, 100, 9), generate_costs(m, 100, 9));
        assert_ne!(generate_costs(m, 100, 9), generate_costs(m, 100, 10));
    }

    #[test]
    fn lognormal_moments_roughly_match() {
        let (mu, sigma) = (1.5, 0.8);
        let c = generate_costs(CostModel::LogNormal { mu, sigma }, 20_000, 3);
        let logs: Vec<f64> = c.iter().map(|v| v.ln()).collect();
        let m = logs.iter().sum::<f64>() / logs.len() as f64;
        let v = logs.iter().map(|l| (l - m) * (l - m)).sum::<f64>() / logs.len() as f64;
        assert!((m - mu).abs() < 0.05, "mu {m}");
        assert!((v.sqrt() - sigma).abs() < 0.05, "sigma {}", v.sqrt());
    }

    #[test]
    fn pareto_is_heavier_tailed_than_lognormal() {
        let p = generate_costs(
            CostModel::ParetoTail {
                scale: 1.0,
                alpha: 1.2,
            },
            5_000,
            4,
        );
        let l = generate_costs(
            CostModel::LogNormal {
                mu: 0.0,
                sigma: 0.5,
            },
            5_000,
            4,
        );
        assert!(CostStats::from_costs(&p).max_over_mean > CostStats::from_costs(&l).max_over_mean);
    }

    #[test]
    fn triangular_ramp() {
        let c = generate_costs(CostModel::Triangular { scale: 2.0 }, 4, 0);
        assert_eq!(c, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn calibration_recovers_parameters() {
        let truth = CostModel::LogNormal {
            mu: 3.0,
            sigma: 1.2,
        };
        let sample = generate_costs(truth, 20_000, 5);
        match calibrate_lognormal(&sample) {
            CostModel::LogNormal { mu, sigma } => {
                assert!((mu - 3.0).abs() < 0.05, "mu {mu}");
                assert!((sigma - 1.2).abs() < 0.05, "sigma {sigma}");
            }
            other => panic!("wrong model {other:?}"),
        }
    }

    #[test]
    fn calibration_handles_zeros() {
        match calibrate_lognormal(&[0.0, 1.0, 2.0]) {
            CostModel::LogNormal { mu, sigma } => {
                assert!(mu.is_finite() && sigma.is_finite());
            }
            other => panic!("wrong model {other:?}"),
        }
    }

    #[test]
    fn busy_work_returns_finite_and_scales() {
        let v = busy_work(1000);
        assert!(v.is_finite());
        assert!(v > 0.0);
        // Zero units is a no-op that still returns the seed value.
        assert!((busy_work(0) - 1.000_000_1).abs() < 1e-12);
    }
}
