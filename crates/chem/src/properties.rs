//! Molecular properties from the converged density.
//!
//! Small, independently verifiable consumers of the SCF result — used
//! by the examples to show the kernel's output is *chemistry*, not just
//! timings. Dipole moments live in [`crate::oneint`] (they are
//! integrals); this module holds density-derived analyses.

use crate::basis::BasisedMolecule;
use crate::oneint::overlap;
use emx_linalg::Matrix;

/// Mulliken population analysis: partial charge per atom,
/// `q_A = Z_A − Σ_{μ∈A} (P·S)_{μμ}`.
///
/// The gross orbital populations sum to the electron count, so the
/// charges of a neutral molecule sum to ~0 (returned values are not
/// renormalized — the residual is a numerical-quality check).
pub fn mulliken_charges(bm: &BasisedMolecule, density: &Matrix) -> Vec<f64> {
    let s = overlap(bm);
    let ps = density.matmul(&s).expect("P·S shapes");
    let mut populations = vec![0.0; bm.charges.len()];
    for (shell, &offset) in bm.shells.iter().zip(&bm.shell_offsets) {
        for c in 0..shell.ncart() {
            populations[shell.atom] += ps[(offset + c, offset + c)];
        }
    }
    bm.charges
        .iter()
        .zip(&populations)
        .map(|(&z, &p)| z - p)
        .collect()
}

/// Total Mulliken electron count `tr(P·S)` — equals the number of
/// electrons for any valid closed-shell density.
pub fn mulliken_electron_count(bm: &BasisedMolecule, density: &Matrix) -> f64 {
    let s = overlap(bm);
    density
        .matmul(&s)
        .expect("P·S shapes")
        .trace()
        .expect("square")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{BasisSet, BasisedMolecule, Element};
    use crate::molecule::Molecule;
    use crate::scf::{rhf, ScfConfig};

    #[test]
    fn water_charges_have_chemical_signs() {
        let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::Sto3g);
        let r = rhf(&bm, &ScfConfig::default());
        let q = mulliken_charges(&bm, &r.density);
        assert_eq!(q.len(), 3);
        // Oxygen pulls density: negative charge; hydrogens positive.
        assert!(q[0] < -0.1, "O charge {q:?}");
        assert!(q[1] > 0.05 && q[2] > 0.05, "H charges {q:?}");
        // Symmetry: both hydrogens identical.
        assert!((q[1] - q[2]).abs() < 1e-8);
        // Neutral molecule: charges sum to ~0.
        assert!(q.iter().sum::<f64>().abs() < 1e-8);
    }

    #[test]
    fn electron_count_from_population() {
        let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::SixThirtyOneG);
        let r = rhf(&bm, &ScfConfig::default());
        assert!((mulliken_electron_count(&bm, &r.density) - 10.0).abs() < 1e-8);
    }

    #[test]
    fn homonuclear_molecule_has_zero_charges() {
        let bm = BasisedMolecule::assign(&Molecule::h2(1.4), BasisSet::Sto3g);
        let r = rhf(&bm, &ScfConfig::default());
        let q = mulliken_charges(&bm, &r.density);
        assert!(q.iter().all(|&x| x.abs() < 1e-10), "{q:?}");
    }

    #[test]
    fn methane_carbon_is_negative_in_sto3g() {
        let bm = BasisedMolecule::assign(&Molecule::alkane(1), BasisSet::Sto3g);
        let r = rhf(&bm, &ScfConfig::default());
        let q = mulliken_charges(&bm, &r.density);
        let c = bm.charges.iter().position(|&z| z == 6.0).unwrap();
        let _ = Element::C;
        assert!(q[c] < 0.0, "C charge {}", q[c]);
        assert!(q.iter().sum::<f64>().abs() < 1e-8);
    }
}
