//! Precomputed shell-pair data.
//!
//! Real integral codes never recompute the Gaussian-product quantities
//! per quartet: a *shell pair* caches, for every pair of primitives, the
//! total exponent `p`, the product center `P` and the per-dimension
//! Hermite `E` tables. An ERI over the quartet `(AB|CD)` then only
//! combines a *bra* pair with a *ket* pair through the `R` tensor.
//!
//! Two representations coexist:
//!
//! * [`ShellPair`] — the AoS form, one [`PrimPair`] per primitive pair
//!   with per-dimension `E` tables. The scalar quartet kernel
//!   ([`crate::eri::eri_quartet_into`]) and the one-electron integrals
//!   consume it.
//! * [`ShellPairBatch`] / [`PairBatchSet`] — the batched SoA form: all
//!   primitive pairs of every pair in one angular-momentum class laid
//!   out in flat contiguous arrays, with the three-dimensional `E`
//!   tables pre-multiplied into dense per-component *products* over the
//!   Hermite simplex (contraction coefficients, component norms and the
//!   ket-side `(−1)^{t+u+v}` sign already folded in). The batched ERI
//!   kernel ([`crate::eribatch::eri_bra_block_into`]) reads only this
//!   form, so its inner loops are branch-free flat-slice arithmetic.

use crate::basis::{cartesian_components, Shell};
use crate::md::{hermite_components, hermite_count, HermiteE, PAIR_L_MAX};

/// One primitive pair within a shell pair.
#[derive(Debug, Clone)]
pub struct PrimPair {
    /// Total exponent `p = a + b`.
    pub p: f64,
    /// Exponent of the second primitive (needed by the kinetic-energy
    /// recurrence, which differentiates the *ket* Gaussian).
    pub eb: f64,
    /// Gaussian product center.
    pub center: [f64; 3],
    /// Product of contraction coefficients `c_a · c_b`.
    pub coef: f64,
    /// Hermite E tables for x, y, z.
    pub ex: HermiteE,
    /// Hermite E table for y.
    pub ey: HermiteE,
    /// Hermite E table for z.
    pub ez: HermiteE,
}

/// Cached pair of shells `(a, b)` with all primitive-pair data.
#[derive(Debug, Clone)]
pub struct ShellPair {
    /// Index of the first shell.
    pub a: usize,
    /// Index of the second shell.
    pub b: usize,
    /// Angular momentum of shell `a`.
    pub la: usize,
    /// Angular momentum of shell `b`.
    pub lb: usize,
    /// All primitive pairs (negligible ones pruned).
    pub prims: Vec<PrimPair>,
}

impl ShellPair {
    /// Builds the pair data for shells `sa` (index `a`) and `sb` (index
    /// `b`). `extra_j` widens the second index of the `E` tables — the
    /// kinetic-energy operator needs `j+2`.
    ///
    /// Primitive pairs whose Gaussian-product prefactor is below
    /// `1e-18` in every dimension product are pruned; for well-separated
    /// diffuse/tight pairs this removes most of the work, exactly like
    /// production integral codes do.
    pub fn build(a: usize, sa: &Shell, b: usize, sb: &Shell, extra_j: usize) -> ShellPair {
        let mut prims = Vec::with_capacity(sa.nprim() * sb.nprim());
        for (&ea, &ca) in sa.exps.iter().zip(&sa.coefs) {
            for (&eb, &cb) in sb.exps.iter().zip(&sb.coefs) {
                let p = ea + eb;
                let center = [
                    (ea * sa.center[0] + eb * sb.center[0]) / p,
                    (ea * sa.center[1] + eb * sb.center[1]) / p,
                    (ea * sa.center[2] + eb * sb.center[2]) / p,
                ];
                let ex = HermiteE::build(sa.l, sb.l + extra_j, ea, eb, sa.center[0], sb.center[0]);
                let ey = HermiteE::build(sa.l, sb.l + extra_j, ea, eb, sa.center[1], sb.center[1]);
                let ez = HermiteE::build(sa.l, sb.l + extra_j, ea, eb, sa.center[2], sb.center[2]);
                let k = ex.at(0, 0, 0) * ey.at(0, 0, 0) * ez.at(0, 0, 0);
                if (ca * cb * k).abs() < 1e-18 {
                    continue;
                }
                prims.push(PrimPair {
                    p,
                    eb,
                    center,
                    coef: ca * cb,
                    ex,
                    ey,
                    ez,
                });
            }
        }
        ShellPair {
            a,
            b,
            la: sa.l,
            lb: sb.l,
            prims,
        }
    }
}

/// Batched SoA data for every shell pair of one angular-momentum class
/// `(la, lb)`.
///
/// Per *member* pair: its index in the source pair list, its primitive
/// range in `prim_off`, and its Schwarz diagonal `√max|(ab|ab)|`
/// (cached at screening time so no consumer recomputes it). Per
/// *primitive* pair, SoA across the whole class: total exponent `p`,
/// product center `(px, py, pz)`, and two dense `E`-product tables of
/// `ncomp · nh` doubles each:
///
/// * `e_bra[prim][comp][h] = c_a·c_b · N_a·N_b · E_t^x E_u^y E_v^z`
/// * `e_ket[prim][comp][h]` — the same with `(−1)^{t+u+v}` folded in,
///
/// where `h` runs over [`hermite_components`]`(la+lb)` and `comp` over
/// the Cartesian component pairs (row-major `ia·ncb + ib`). Entries
/// outside the per-component triangle (`t > i_x+j_x` …) are zero, so
/// the kernel never branches on validity. Folding the contraction
/// coefficient and the component norms into *both* tables is exact:
/// each quartet uses one pair's `e_bra` and the other's `e_ket`, so
/// every factor appears exactly once.
#[derive(Debug, Clone)]
pub struct ShellPairBatch {
    /// Angular momentum of the first shell in every member pair.
    pub la: usize,
    /// Angular momentum of the second shell in every member pair.
    pub lb: usize,
    /// Pair Hermite order `la + lb`.
    pub l: usize,
    /// Hermite simplex size `hermite_count(l)` — the `h` stride.
    pub nh: usize,
    /// Cartesian components of the first shell.
    pub nca: usize,
    /// Cartesian components of the second shell.
    pub ncb: usize,
    /// Component pairs per quartet side: `nca · ncb`.
    pub ncomp: usize,
    /// Source pair-list index of each member.
    pub members: Vec<u32>,
    /// Primitive-pair range of member `m`: `prim_off[m]..prim_off[m+1]`.
    pub prim_off: Vec<u32>,
    /// Schwarz diagonal `√max|(ab|ab)|` per member (0 when unknown).
    pub schwarz: Vec<f64>,
    /// Total exponent `p = a + b` per primitive pair.
    pub p: Vec<f64>,
    /// Product center x per primitive pair.
    pub px: Vec<f64>,
    /// Product center y per primitive pair.
    pub py: Vec<f64>,
    /// Product center z per primitive pair.
    pub pz: Vec<f64>,
    /// Bra-side `E` products, `[prim][comp][h]`, coef- and norm-folded.
    pub e_bra: Vec<f64>,
    /// Ket-side `E` products: `e_bra` with `(−1)^{t+u+v}` folded in.
    pub e_ket: Vec<f64>,
}

impl ShellPairBatch {
    fn new_class(la: usize, lb: usize) -> ShellPairBatch {
        assert!(
            la + lb <= PAIR_L_MAX,
            "pair order {la}+{lb} exceeds PAIR_L_MAX {PAIR_L_MAX}"
        );
        let l = la + lb;
        let nca = cartesian_components(la).len();
        let ncb = cartesian_components(lb).len();
        ShellPairBatch {
            la,
            lb,
            l,
            nh: hermite_count(l),
            nca,
            ncb,
            ncomp: nca * ncb,
            members: Vec::new(),
            prim_off: vec![0],
            schwarz: Vec::new(),
            p: Vec::new(),
            px: Vec::new(),
            py: Vec::new(),
            pz: Vec::new(),
            e_bra: Vec::new(),
            e_ket: Vec::new(),
        }
    }

    /// Appends one pair's primitive data; returns its member slot.
    fn push_pair(&mut self, pair_index: usize, sp: &ShellPair, shells: &[Shell]) -> usize {
        debug_assert_eq!((sp.la, sp.lb), (self.la, self.lb));
        let (sa, sb) = (&shells[sp.a], &shells[sp.b]);
        let carts_a = cartesian_components(self.la);
        let carts_b = cartesian_components(self.lb);
        let hcomps = hermite_components(self.l);
        for pp in &sp.prims {
            self.p.push(pp.p);
            self.px.push(pp.center[0]);
            self.py.push(pp.center[1]);
            self.pz.push(pp.center[2]);
            for &(ax, ay, az) in carts_a {
                let na = sa.component_norm((ax, ay, az));
                for &(bx, by, bz) in carts_b {
                    let w = pp.coef * na * sb.component_norm((bx, by, bz));
                    for &(t, u, v) in hcomps {
                        let e = pp.ex.at(ax, bx, t) * pp.ey.at(ay, by, u) * pp.ez.at(az, bz, v);
                        self.e_bra.push(w * e);
                        let sign = if (t + u + v) % 2 == 0 { 1.0 } else { -1.0 };
                        self.e_ket.push(sign * w * e);
                    }
                }
            }
        }
        self.members.push(pair_index as u32);
        self.prim_off.push(self.p.len() as u32);
        self.schwarz.push(0.0);
        self.members.len() - 1
    }

    /// Number of primitive pairs of member `m`.
    #[inline]
    pub fn nprims(&self, m: usize) -> usize {
        (self.prim_off[m + 1] - self.prim_off[m]) as usize
    }
}

/// The batched SoA view of a whole pair list: one [`ShellPairBatch`]
/// per angular-momentum class present, plus the pair-index → (class,
/// slot) map consumers use to find a pair's batch data in O(1).
#[derive(Debug, Clone, Default)]
pub struct PairBatchSet {
    /// One batch per distinct `(la, lb)` class, in first-seen order.
    pub classes: Vec<ShellPairBatch>,
    /// `loc[pair] = (class index, member slot)`.
    pub loc: Vec<(u32, u32)>,
}

impl PairBatchSet {
    /// Builds the batched layout for `pairs` (indices into which are
    /// the `pair_index` space of [`Self::class_of`]). Schwarz bounds
    /// start at 0 — [`Self::set_schwarz`] fills them once screening has
    /// computed the diagonals.
    pub fn build(shells: &[Shell], pairs: &[ShellPair]) -> PairBatchSet {
        let mut keys: Vec<(usize, usize)> = Vec::new();
        let mut classes: Vec<ShellPairBatch> = Vec::new();
        let mut loc = Vec::with_capacity(pairs.len());
        for (pi, sp) in pairs.iter().enumerate() {
            let key = (sp.la, sp.lb);
            let ci = match keys.iter().position(|&k| k == key) {
                Some(i) => i,
                None => {
                    keys.push(key);
                    classes.push(ShellPairBatch::new_class(sp.la, sp.lb));
                    keys.len() - 1
                }
            };
            let slot = classes[ci].push_pair(pi, sp, shells);
            loc.push((ci as u32, slot as u32));
        }
        PairBatchSet { classes, loc }
    }

    /// The batch holding `pair` and its member slot within it.
    #[inline]
    pub fn class_of(&self, pair: usize) -> (&ShellPairBatch, usize) {
        let (c, s) = self.loc[pair];
        (&self.classes[c as usize], s as usize)
    }

    /// Caches the Schwarz diagonal `q[pair] = √max|(ab|ab)|` on each
    /// member (same index space as `build`'s `pairs`).
    pub fn set_schwarz(&mut self, q: &[f64]) {
        assert_eq!(q.len(), self.loc.len(), "schwarz length mismatch");
        for (pi, &(c, s)) in self.loc.iter().enumerate() {
            self.classes[c as usize].schwarz[s as usize] = q[pi];
        }
    }

    /// Cached Schwarz diagonal of `pair`.
    #[inline]
    pub fn schwarz(&self, pair: usize) -> f64 {
        let (c, s) = self.loc[pair];
        self.classes[c as usize].schwarz[s as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::Shell;

    fn s_shell(center: [f64; 3], exps: Vec<f64>, coefs: Vec<f64>) -> Shell {
        Shell::new(0, center, exps, coefs, 0)
    }

    #[test]
    fn prim_pair_count() {
        let a = s_shell([0.0; 3], vec![1.0, 0.5], vec![0.6, 0.4]);
        let b = s_shell([0.0, 0.0, 1.0], vec![0.8], vec![1.0]);
        let sp = ShellPair::build(0, &a, 1, &b, 0);
        assert_eq!(sp.prims.len(), 2);
    }

    #[test]
    fn product_center_on_segment() {
        let a = s_shell([0.0; 3], vec![2.0], vec![1.0]);
        let b = s_shell([0.0, 0.0, 2.0], vec![1.0], vec![1.0]);
        let sp = ShellPair::build(0, &a, 1, &b, 0);
        // P = (2·0 + 1·2)/3 along z.
        assert!((sp.prims[0].center[2] - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(sp.prims[0].center[0], 0.0);
    }

    #[test]
    fn distant_pairs_are_pruned() {
        let a = s_shell([0.0; 3], vec![5.0], vec![1.0]);
        let b = s_shell([0.0, 0.0, 50.0], vec![5.0], vec![1.0]);
        let sp = ShellPair::build(0, &a, 1, &b, 0);
        assert!(sp.prims.is_empty(), "far-apart tight pair must prune");
    }

    #[test]
    fn batch_layout_matches_aos_pairs() {
        // Mixed classes: s|s, p|s, p|p across three shells.
        let shells = vec![
            s_shell([0.0; 3], vec![1.1, 0.3], vec![0.7, 0.4]),
            Shell::new(1, [0.0, 0.9, 0.2], vec![0.8], vec![1.0], 0),
            Shell::new(1, [0.5, -0.3, 1.0], vec![0.5, 2.0], vec![0.5, 0.5], 0),
        ];
        let mut pairs = Vec::new();
        for a in 0..shells.len() {
            for b in 0..=a {
                pairs.push(ShellPair::build(a, &shells[a], b, &shells[b], 0));
            }
        }
        let set = PairBatchSet::build(&shells, &pairs);
        assert_eq!(set.loc.len(), pairs.len());
        // Classes present: (0,0), (1,0), (1,1).
        assert_eq!(set.classes.len(), 3);
        for (pi, sp) in pairs.iter().enumerate() {
            let (bc, slot) = set.class_of(pi);
            assert_eq!((bc.la, bc.lb), (sp.la, sp.lb));
            assert_eq!(bc.members[slot] as usize, pi);
            assert_eq!(bc.nprims(slot), sp.prims.len());
            // SoA centers/exponents match the AoS prim pairs in order.
            let p0 = bc.prim_off[slot] as usize;
            for (k, pp) in sp.prims.iter().enumerate() {
                assert_eq!(bc.p[p0 + k], pp.p);
                assert_eq!(bc.px[p0 + k], pp.center[0]);
                assert_eq!(bc.pz[p0 + k], pp.center[2]);
            }
        }
    }

    #[test]
    fn batch_e_tables_reproduce_hermite_products() {
        use crate::md::hermite_components;
        let shells = vec![
            Shell::new(1, [0.2, -0.1, 0.4], vec![0.9, 0.4], vec![0.6, 0.4], 0),
            s_shell([0.0; 3], vec![1.3], vec![1.0]),
        ];
        let sp = ShellPair::build(0, &shells[0], 1, &shells[1], 0);
        let set = PairBatchSet::build(&shells, std::slice::from_ref(&sp));
        let (bc, slot) = set.class_of(0);
        assert_eq!(slot, 0);
        let carts_a = cartesian_components(sp.la);
        let carts_b = cartesian_components(sp.lb);
        let hcomps = hermite_components(sp.la + sp.lb);
        let p0 = bc.prim_off[0] as usize;
        for (k, pp) in sp.prims.iter().enumerate() {
            let mut idx = (p0 + k) * bc.ncomp * bc.nh;
            for &(ax, ay, az) in carts_a {
                let na = shells[0].component_norm((ax, ay, az));
                for &(bx, by, bz) in carts_b {
                    let nb = shells[1].component_norm((bx, by, bz));
                    for &(t, u, v) in hcomps {
                        let e = pp.coef
                            * na
                            * nb
                            * pp.ex.at(ax, bx, t)
                            * pp.ey.at(ay, by, u)
                            * pp.ez.at(az, bz, v);
                        assert!((bc.e_bra[idx] - e).abs() < 1e-15);
                        let sign = if (t + u + v) % 2 == 0 { 1.0 } else { -1.0 };
                        assert!((bc.e_ket[idx] - sign * e).abs() < 1e-15);
                        idx += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn schwarz_cache_round_trips() {
        let shells = vec![
            s_shell([0.0; 3], vec![1.0], vec![1.0]),
            s_shell([0.0, 0.0, 1.0], vec![0.7], vec![1.0]),
        ];
        let pairs = vec![
            ShellPair::build(0, &shells[0], 0, &shells[0], 0),
            ShellPair::build(1, &shells[1], 0, &shells[0], 0),
        ];
        let mut set = PairBatchSet::build(&shells, &pairs);
        assert_eq!(set.schwarz(0), 0.0);
        set.set_schwarz(&[1.25, 0.5]);
        assert_eq!(set.schwarz(0), 1.25);
        assert_eq!(set.schwarz(1), 0.5);
    }
}
