//! Precomputed shell-pair data.
//!
//! Real integral codes never recompute the Gaussian-product quantities
//! per quartet: a *shell pair* caches, for every pair of primitives, the
//! total exponent `p`, the product center `P` and the per-dimension
//! Hermite `E` tables. An ERI over the quartet `(AB|CD)` then only
//! combines a *bra* pair with a *ket* pair through the `R` tensor.

use crate::basis::Shell;
use crate::md::HermiteE;

/// One primitive pair within a shell pair.
#[derive(Debug, Clone)]
pub struct PrimPair {
    /// Total exponent `p = a + b`.
    pub p: f64,
    /// Exponent of the second primitive (needed by the kinetic-energy
    /// recurrence, which differentiates the *ket* Gaussian).
    pub eb: f64,
    /// Gaussian product center.
    pub center: [f64; 3],
    /// Product of contraction coefficients `c_a · c_b`.
    pub coef: f64,
    /// Hermite E tables for x, y, z.
    pub ex: HermiteE,
    /// Hermite E table for y.
    pub ey: HermiteE,
    /// Hermite E table for z.
    pub ez: HermiteE,
}

/// Cached pair of shells `(a, b)` with all primitive-pair data.
#[derive(Debug, Clone)]
pub struct ShellPair {
    /// Index of the first shell.
    pub a: usize,
    /// Index of the second shell.
    pub b: usize,
    /// Angular momentum of shell `a`.
    pub la: usize,
    /// Angular momentum of shell `b`.
    pub lb: usize,
    /// All primitive pairs (negligible ones pruned).
    pub prims: Vec<PrimPair>,
}

impl ShellPair {
    /// Builds the pair data for shells `sa` (index `a`) and `sb` (index
    /// `b`). `extra_j` widens the second index of the `E` tables — the
    /// kinetic-energy operator needs `j+2`.
    ///
    /// Primitive pairs whose Gaussian-product prefactor is below
    /// `1e-18` in every dimension product are pruned; for well-separated
    /// diffuse/tight pairs this removes most of the work, exactly like
    /// production integral codes do.
    pub fn build(a: usize, sa: &Shell, b: usize, sb: &Shell, extra_j: usize) -> ShellPair {
        let mut prims = Vec::with_capacity(sa.nprim() * sb.nprim());
        for (&ea, &ca) in sa.exps.iter().zip(&sa.coefs) {
            for (&eb, &cb) in sb.exps.iter().zip(&sb.coefs) {
                let p = ea + eb;
                let center = [
                    (ea * sa.center[0] + eb * sb.center[0]) / p,
                    (ea * sa.center[1] + eb * sb.center[1]) / p,
                    (ea * sa.center[2] + eb * sb.center[2]) / p,
                ];
                let ex = HermiteE::build(sa.l, sb.l + extra_j, ea, eb, sa.center[0], sb.center[0]);
                let ey = HermiteE::build(sa.l, sb.l + extra_j, ea, eb, sa.center[1], sb.center[1]);
                let ez = HermiteE::build(sa.l, sb.l + extra_j, ea, eb, sa.center[2], sb.center[2]);
                let k = ex.at(0, 0, 0) * ey.at(0, 0, 0) * ez.at(0, 0, 0);
                if (ca * cb * k).abs() < 1e-18 {
                    continue;
                }
                prims.push(PrimPair {
                    p,
                    eb,
                    center,
                    coef: ca * cb,
                    ex,
                    ey,
                    ez,
                });
            }
        }
        ShellPair {
            a,
            b,
            la: sa.l,
            lb: sb.l,
            prims,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::Shell;

    fn s_shell(center: [f64; 3], exps: Vec<f64>, coefs: Vec<f64>) -> Shell {
        Shell::new(0, center, exps, coefs, 0)
    }

    #[test]
    fn prim_pair_count() {
        let a = s_shell([0.0; 3], vec![1.0, 0.5], vec![0.6, 0.4]);
        let b = s_shell([0.0, 0.0, 1.0], vec![0.8], vec![1.0]);
        let sp = ShellPair::build(0, &a, 1, &b, 0);
        assert_eq!(sp.prims.len(), 2);
    }

    #[test]
    fn product_center_on_segment() {
        let a = s_shell([0.0; 3], vec![2.0], vec![1.0]);
        let b = s_shell([0.0, 0.0, 2.0], vec![1.0], vec![1.0]);
        let sp = ShellPair::build(0, &a, 1, &b, 0);
        // P = (2·0 + 1·2)/3 along z.
        assert!((sp.prims[0].center[2] - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(sp.prims[0].center[0], 0.0);
    }

    #[test]
    fn distant_pairs_are_pruned() {
        let a = s_shell([0.0; 3], vec![5.0], vec![1.0]);
        let b = s_shell([0.0, 0.0, 50.0], vec![5.0], vec![1.0]);
        let sp = ShellPair::build(0, &a, 1, &b, 0);
        assert!(sp.prims.is_empty(), "far-apart tight pair must prune");
    }
}
