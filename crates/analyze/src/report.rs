//! Machine-readable violation reports.
//!
//! Every analyzer pass speaks one vocabulary: a [`Violation`] names the
//! broken invariant ([`ViolationKind`]), the policy and fault scenario
//! it was observed under, and — when the invariant is per-task or
//! per-worker — the offending task and worker ids. Reports serialize to
//! the workspace's minimal JSON ([`emx_obs::Json`]), so CI gates and
//! humans read the same artifact.

use emx_obs::Json;
use std::fmt;

/// The invariant a schedule or configuration violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A task was never assigned to any worker (exactly-once broken low).
    TaskDropped,
    /// A task was assigned to more than one worker (exactly-once broken
    /// high).
    TaskDuplicated,
    /// A claim named a worker or task outside the configured ranges.
    OutOfRange,
    /// The replay driver exhausted its progress budget: some worker can
    /// spin forever without obtaining work or terminating (the
    /// dead-victim bug class fixed in the work-stealing executor).
    Livelock,
    /// A configuration admits a cycle in the wait-for graph: every party
    /// some worker can wait on is itself waiting (or dead) with no
    /// timeout to break the wait.
    Deadlock,
    /// The same policy produced different assignments on two substrates
    /// (threads vs simulator vs sequential replay) although it is
    /// deterministic.
    SubstrateMismatch,
    /// Two identically-seeded runs disagreed — hidden state (wall clock,
    /// global RNG) leaked into a replay path.
    Nondeterminism,
    /// A fault scenario lost tasks although survivors existed to run
    /// them.
    LostTask,
    /// Fault accounting does not balance (orphaned ≠ recovered + lost,
    /// or executed + lost ≠ total).
    AccountingLeak,
    /// A recovered task completed before its orphaning failure could
    /// have been detected.
    EarlyRecovery,
    /// A worker exceeded the configured idle bound while work remained
    /// claimable.
    UnboundedIdle,
    /// A source atomic site uses `Ordering::Relaxed` outside any
    /// manifest-declared counter role and without a `// relaxed-ok:`
    /// justification (emx-srclint).
    UnmanagedOrdering,
    /// A declared protocol sequence expects a memory fence that is
    /// absent from the source — the PR-6 seqlock-writer bug class
    /// (emx-srclint).
    MissingFence,
    /// A source site or function diverges from its declared protocol
    /// rule: wrong ordering for the role, or an atomic-op sequence
    /// that does not match the manifest exactly (emx-srclint).
    ProtocolMismatch,
    /// An `unsafe` occurrence without a `// SAFETY:` comment on or
    /// directly above it (emx-srclint).
    MissingSafetyComment,
    /// A non-Relaxed atomic site in the source that no manifest rule
    /// covers — new synchronization must declare its protocol
    /// (emx-srclint).
    UndeclaredSite,
    /// A manifest rule performs an Acquire-side read but names no
    /// Release-side partner role, or its named partner publishes
    /// nothing (emx-srclint).
    UnpairedAcquire,
    /// A manifest rule matched no source site at all — the code moved
    /// and the declared protocol went stale (emx-srclint).
    ManifestStale,
}

impl ViolationKind {
    /// Stable kebab-case name used in reports and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::TaskDropped => "task-dropped",
            ViolationKind::TaskDuplicated => "task-duplicated",
            ViolationKind::OutOfRange => "out-of-range",
            ViolationKind::Livelock => "livelock",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::SubstrateMismatch => "substrate-mismatch",
            ViolationKind::Nondeterminism => "nondeterminism",
            ViolationKind::LostTask => "lost-task",
            ViolationKind::AccountingLeak => "accounting-leak",
            ViolationKind::EarlyRecovery => "early-recovery",
            ViolationKind::UnboundedIdle => "unbounded-idle",
            ViolationKind::UnmanagedOrdering => "unmanaged-ordering",
            ViolationKind::MissingFence => "missing-fence",
            ViolationKind::ProtocolMismatch => "protocol-mismatch",
            ViolationKind::MissingSafetyComment => "missing-safety-comment",
            ViolationKind::UndeclaredSite => "undeclared-site",
            ViolationKind::UnpairedAcquire => "unpaired-acquire",
            ViolationKind::ManifestStale => "manifest-stale",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken invariant, located as precisely as the invariant allows.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Canonical name of the policy under analysis.
    pub policy: String,
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Fault scenario label (`"healthy"` for fault-free analysis).
    pub scenario: String,
    /// Offending task id, when the invariant is per-task.
    pub task: Option<usize>,
    /// Offending worker id, when the invariant is per-worker.
    pub worker: Option<usize>,
    /// Human-readable explanation with the observed numbers.
    pub detail: String,
}

impl Violation {
    /// Constructs a violation with no task/worker location.
    pub fn new(
        policy: impl Into<String>,
        kind: ViolationKind,
        scenario: impl Into<String>,
        detail: impl Into<String>,
    ) -> Violation {
        Violation {
            policy: policy.into(),
            kind,
            scenario: scenario.into(),
            task: None,
            worker: None,
            detail: detail.into(),
        }
    }

    /// Attaches the offending task id.
    pub fn at_task(mut self, task: usize) -> Violation {
        self.task = Some(task);
        self
    }

    /// Attaches the offending worker id.
    pub fn at_worker(mut self, worker: usize) -> Violation {
        self.worker = Some(worker);
        self
    }

    /// The violation as a JSON object (`policy`, `kind`, `scenario`,
    /// `task`, `worker`, `detail`).
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<usize>| match v {
            Some(x) => Json::Num(x as f64),
            None => Json::Null,
        };
        Json::obj(vec![
            ("policy", Json::Str(self.policy.clone())),
            ("kind", Json::Str(self.kind.name().to_string())),
            ("scenario", Json::Str(self.scenario.clone())),
            ("task", opt(self.task)),
            ("worker", opt(self.worker)),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} / {}", self.kind, self.policy, self.scenario)?;
        if let Some(t) = self.task {
            write!(f, " task {t}")?;
        }
        if let Some(w) = self.worker {
            write!(f, " worker {w}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The outcome of one full analysis run: per-policy × scenario pass
/// counts, every violation found, and the combinations the analyzer
/// could not express (never silently skipped).
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// `(policy, scenario)` combinations that were checked and passed.
    pub passed: Vec<(String, String)>,
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
    /// Combinations skipped with the reason (e.g. a policy the fault
    /// simulator cannot express).
    pub skipped: Vec<String>,
}

impl AnalysisReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.passed.extend(other.passed);
        self.violations.extend(other.violations);
        self.skipped.extend(other.skipped);
    }

    /// The report as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "passed",
                Json::Arr(
                    self.passed
                        .iter()
                        .map(|(p, s)| Json::Str(format!("{p}/{s}")))
                        .collect(),
                ),
            ),
            (
                "violations",
                Json::Arr(self.violations.iter().map(Violation::to_json).collect()),
            ),
            (
                "skipped",
                Json::Arr(self.skipped.iter().cloned().map(Json::Str).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_json_has_every_field() {
        let v = Violation::new("guided", ViolationKind::TaskDropped, "healthy", "gone")
            .at_task(7)
            .at_worker(2);
        let j = v.to_json();
        assert_eq!(j.get("policy").and_then(Json::as_str), Some("guided"));
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("task-dropped"));
        assert_eq!(j.get("task").and_then(Json::as_f64), Some(7.0));
        assert_eq!(j.get("worker").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("scenario").and_then(Json::as_str), Some("healthy"));
    }

    #[test]
    fn display_locates_the_violation() {
        let v = Violation::new("ws", ViolationKind::Livelock, "dead-victim", "spin").at_worker(3);
        let s = v.to_string();
        assert!(s.contains("livelock"), "{s}");
        assert!(s.contains("worker 3"), "{s}");
    }

    #[test]
    fn report_merge_and_clean() {
        let mut a = AnalysisReport::default();
        assert!(a.is_clean());
        let mut b = AnalysisReport::default();
        b.violations
            .push(Violation::new("x", ViolationKind::Deadlock, "s", "d"));
        b.passed.push(("x".into(), "healthy".into()));
        a.merge(b);
        assert!(!a.is_clean());
        assert_eq!(a.passed.len(), 1);
    }
}
