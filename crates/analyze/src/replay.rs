//! The instrumented replay probe.
//!
//! [`emx_sched::replay_assignment`] asserts its invariants and panics on
//! the first breach — the right behavior inside the substrates, and the
//! wrong one for an analyzer that must *report* every breach. This
//! module re-drives the same [`SchedulePolicy`] state machines with a
//! tolerant driver: duplicates, drops, out-of-range claims and progress
//! stalls are collected as [`Violation`]s instead of aborting, and a
//! progress budget converts a spinning policy (the dead-victim livelock
//! class) into a finding rather than a hung analyzer.

use crate::report::{Violation, ViolationKind};
use emx_sched::{Claim, SchedulePolicy};

/// Everything one probed replay observed.
#[derive(Debug, Clone)]
pub struct ProbeOutcome {
    /// Final task→worker map (`None` = never assigned).
    pub assignment: Vec<Option<u32>>,
    /// Violations observed while driving the policy.
    pub violations: Vec<Violation>,
    /// Total `next_task` calls issued.
    pub calls: u64,
    /// True when the driver hit its progress budget before every worker
    /// retired — the policy can spin forever.
    pub stalled: bool,
    /// Longest run of consecutive scheduling rounds in which no worker
    /// made progress (work remained unfinished throughout).
    pub max_idle_rounds: u64,
}

impl ProbeOutcome {
    /// The assignment as a plain vector; `None` slots become `u32::MAX`.
    pub fn assignment_or_max(&self) -> Vec<u32> {
        self.assignment
            .iter()
            .map(|a| a.unwrap_or(u32::MAX))
            .collect()
    }
}

/// Drives `policy` round-robin over `workers` virtual workers until all
/// retire or the progress budget runs out, recording every invariant
/// breach. `label` and `scenario` tag the emitted violations.
///
/// The budget is expressed in *stalled rounds*: full sweeps over every
/// unfinished worker in which no task was claimed. A correct policy
/// needs at most a handful (steal transfers deliver on the next call);
/// the default bound in [`probe`] is generous enough for any legitimate
/// topology yet converts an unbounded spin into a finding in
/// microseconds.
pub fn probe_with_budget(
    policy: &mut dyn SchedulePolicy,
    ntasks: usize,
    workers: usize,
    label: &str,
    scenario: &str,
    stall_budget: u64,
) -> ProbeOutcome {
    let mut assignment: Vec<Option<u32>> = vec![None; ntasks];
    let mut violations = Vec::new();
    let mut done = vec![false; workers];
    let mut calls = 0u64;
    let mut stalled_rounds = 0u64;
    let mut max_idle_rounds = 0u64;

    while !done.iter().all(|&d| d) {
        let mut progressed = false;
        for (w, done_w) in done.iter_mut().enumerate() {
            if *done_w {
                continue;
            }
            calls += 1;
            match policy.next_task(w) {
                Claim::Local { begin, end } | Claim::FromCounter { begin, end } => {
                    if end < begin || end > ntasks {
                        violations.push(
                            Violation::new(
                                label,
                                ViolationKind::OutOfRange,
                                scenario,
                                format!("claim {begin}..{end} outside 0..{ntasks}"),
                            )
                            .at_worker(w),
                        );
                        // A malformed range cannot be executed; treat the
                        // worker as wedged and let the budget decide.
                        continue;
                    }
                    if end > begin {
                        progressed = true;
                    }
                    for (i, slot) in assignment[begin..end]
                        .iter_mut()
                        .enumerate()
                        .map(|(off, s)| (begin + off, s))
                    {
                        match slot {
                            Some(prev) => violations.push(
                                Violation::new(
                                    label,
                                    ViolationKind::TaskDuplicated,
                                    scenario,
                                    format!("task {i} claimed by worker {w} after worker {prev}"),
                                )
                                .at_task(i)
                                .at_worker(w),
                            ),
                            None => {
                                *slot = Some(w as u32);
                                policy.task_done(w, i, 0.0);
                            }
                        }
                    }
                }
                // Stolen work arrives as a Local claim on the next call;
                // the steal itself is activity but not progress.
                Claim::StealFrom { victim, amount } => {
                    if victim >= workers {
                        violations.push(
                            Violation::new(
                                label,
                                ViolationKind::OutOfRange,
                                scenario,
                                format!("steal victim {victim} outside 0..{workers}"),
                            )
                            .at_worker(w),
                        );
                    }
                    let _ = amount;
                }
                Claim::Done => *done_w = true,
            }
        }
        if progressed || done.iter().all(|&d| d) {
            stalled_rounds = 0;
        } else {
            stalled_rounds += 1;
            max_idle_rounds = max_idle_rounds.max(stalled_rounds);
            if stalled_rounds > stall_budget {
                let spinning: Vec<usize> = (0..workers).filter(|&w| !done[w]).collect();
                let mut v = Violation::new(
                    label,
                    ViolationKind::Livelock,
                    scenario,
                    format!(
                        "no progress in {stalled_rounds} consecutive rounds; \
                         workers {spinning:?} neither obtain work nor retire"
                    ),
                );
                if let [w] = spinning[..] {
                    v = v.at_worker(w);
                }
                violations.push(v);
                return ProbeOutcome {
                    assignment,
                    violations,
                    calls,
                    stalled: true,
                    max_idle_rounds,
                };
            }
        }
    }

    for (i, slot) in assignment.iter().enumerate() {
        if slot.is_none() {
            violations.push(
                Violation::new(
                    label,
                    ViolationKind::TaskDropped,
                    scenario,
                    format!("task {i} was never assigned to any worker"),
                )
                .at_task(i),
            );
        }
    }

    ProbeOutcome {
        assignment,
        violations,
        calls,
        stalled: false,
        max_idle_rounds,
    }
}

/// [`probe_with_budget`] with the default stall budget: `4·P + 16`
/// fruitless rounds. Any legitimate steal topology delivers work (or
/// drains to global termination) within `O(P)` rounds of the sequential
/// driver; the slack covers batch-steal redistribution chains.
pub fn probe(
    policy: &mut dyn SchedulePolicy,
    ntasks: usize,
    workers: usize,
    label: &str,
    scenario: &str,
) -> ProbeOutcome {
    probe_with_budget(
        policy,
        ntasks,
        workers,
        label,
        scenario,
        4 * workers as u64 + 16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sched::{build_policy, PolicyKind, StealConfig};

    #[test]
    fn healthy_policies_probe_clean() {
        for kind in [
            PolicyKind::Serial,
            PolicyKind::StaticBlock,
            PolicyKind::StaticCyclic,
            PolicyKind::DynamicCounter { chunk: 3 },
            PolicyKind::Guided { min_chunk: 1 },
            PolicyKind::GuidedAdaptive { k: 4, min_chunk: 2 },
            PolicyKind::WorkStealing(StealConfig::default()),
        ] {
            let mut policy = build_policy(&kind, 40, 4);
            let out = probe(policy.as_mut(), 40, 4, kind.name(), "healthy");
            assert!(
                out.violations.is_empty(),
                "{}: {:?}",
                kind.name(),
                out.violations
            );
            assert!(!out.stalled);
            assert!(out.assignment.iter().all(Option::is_some));
        }
    }

    #[test]
    fn probe_matches_replay_assignment() {
        for kind in [
            PolicyKind::StaticCyclic,
            PolicyKind::DynamicCounter { chunk: 5 },
            PolicyKind::WorkStealing(StealConfig::default()),
        ] {
            let mut policy = build_policy(&kind, 33, 3);
            let out = probe(policy.as_mut(), 33, 3, kind.name(), "healthy");
            assert_eq!(
                out.assignment_or_max(),
                emx_sched::replay_assignment(&kind, 33, 3),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn zero_tasks_probe_clean() {
        let mut policy = build_policy(&PolicyKind::Guided { min_chunk: 1 }, 0, 3);
        let out = probe(policy.as_mut(), 0, 3, "guided", "healthy");
        assert!(out.violations.is_empty());
        assert!(out.assignment.is_empty());
    }
}
