//! Mutation self-test: proof the verifier can actually see.
//!
//! A verifier that has never flagged anything is indistinguishable from
//! one that checks nothing. This module seeds *known* violations into
//! otherwise-correct policies — a dropped task, a double assignment, a
//! dead-victim livelock — runs them through the same
//! [`crate::replay::probe`] the real verifier uses, and asserts each
//! seeded defect is reported as exactly the expected
//! [`ViolationKind`]. `reproduce analyze` runs this before trusting a
//! clean roster sweep, and [`self_test`] is the CI gate's canary.

use crate::replay::{probe, ProbeOutcome};
use crate::report::{AnalysisReport, Violation, ViolationKind};
use emx_sched::{build_policy, Claim, PolicyKind, SchedulePolicy};

/// A defect seeded into a healthy policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Task `x` is silently swallowed — never handed to any worker.
    DropTask(usize),
    /// Task `x` is handed out a second time, to a different worker.
    DuplicateTask(usize),
    /// Workers other than 0 spin forever issuing steals against a
    /// victim that never yields work (the dead-victim bug class).
    DeadVictimSpin,
}

impl Mutation {
    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropTask(_) => "drop-task",
            Mutation::DuplicateTask(_) => "duplicate-task",
            Mutation::DeadVictimSpin => "dead-victim-spin",
        }
    }

    /// The violation kind this mutation must be reported as.
    pub fn expected_kind(self) -> ViolationKind {
        match self {
            Mutation::DropTask(_) => ViolationKind::TaskDropped,
            Mutation::DuplicateTask(_) => ViolationKind::TaskDuplicated,
            Mutation::DeadVictimSpin => ViolationKind::Livelock,
        }
    }
}

/// A healthy policy with one seeded defect, still implementing
/// [`SchedulePolicy`] so the probe cannot tell it apart structurally.
pub struct MutantPolicy {
    inner: Box<dyn SchedulePolicy>,
    mutation: Mutation,
    /// Deferred remainder of a claim split around a dropped task, per
    /// worker.
    stash: Vec<Option<(usize, usize)>>,
    /// Worker observed claiming the to-be-duplicated task.
    dup_owner: Option<usize>,
    /// The duplicate has been emitted.
    dup_done: bool,
}

impl MutantPolicy {
    /// Wraps the reference policy for `kind` with the seeded `mutation`.
    pub fn new(
        kind: &PolicyKind,
        ntasks: usize,
        workers: usize,
        mutation: Mutation,
    ) -> MutantPolicy {
        MutantPolicy {
            inner: build_policy(kind, ntasks, workers),
            mutation,
            stash: vec![None; workers],
            dup_owner: None,
            dup_done: false,
        }
    }

    fn observe_claim(&mut self, worker: usize, begin: usize, end: usize) {
        if let Mutation::DuplicateTask(x) = self.mutation {
            if (begin..end).contains(&x) && self.dup_owner.is_none() {
                self.dup_owner = Some(worker);
            }
        }
    }
}

impl SchedulePolicy for MutantPolicy {
    fn name(&self) -> &'static str {
        self.mutation.name()
    }

    fn initial_partition(&self) -> Option<Vec<u32>> {
        self.inner.initial_partition()
    }

    fn next_task(&mut self, worker: usize) -> Claim {
        // A pending remainder from an earlier split goes out first.
        if let Some((b, e)) = self.stash[worker].take() {
            return Claim::Local { begin: b, end: e };
        }
        if let Mutation::DuplicateTask(x) = self.mutation {
            if !self.dup_done {
                if let Some(owner) = self.dup_owner {
                    if owner != worker {
                        self.dup_done = true;
                        return Claim::Local {
                            begin: x,
                            end: x + 1,
                        };
                    }
                }
            }
        }
        loop {
            let claim = self.inner.next_task(worker);
            let (begin, end, from_counter) = match claim {
                Claim::Local { begin, end } => (begin, end, false),
                Claim::FromCounter { begin, end } => (begin, end, true),
                other => return other,
            };
            self.observe_claim(worker, begin, end);
            if let Mutation::DropTask(x) = self.mutation {
                if (begin..end).contains(&x) {
                    // Swallow x; mark it done inside the inner policy so
                    // its bookkeeping still terminates.
                    self.inner.task_done(worker, x, 0.0);
                    let (lo, hi) = (begin, end);
                    if lo == x && x + 1 == hi {
                        continue; // the whole claim was the victim
                    }
                    if lo == x {
                        return Claim::Local {
                            begin: x + 1,
                            end: hi,
                        };
                    }
                    if x + 1 == hi {
                        return Claim::Local { begin: lo, end: x };
                    }
                    self.stash[worker] = Some((x + 1, hi));
                    return Claim::Local { begin: lo, end: x };
                }
            }
            return if from_counter {
                Claim::FromCounter { begin, end }
            } else {
                Claim::Local { begin, end }
            };
        }
    }

    fn task_done(&mut self, worker: usize, task: usize, cost: f64) {
        self.inner.task_done(worker, task, cost);
    }
}

/// The dead-victim spinner: worker 0 drains everything, every other
/// worker issues steals against it forever and never retires. A policy
/// with this shape is what the exhausted-retries deadlock fix (e82b711)
/// guards against in the executor.
pub struct DeadVictimSpinPolicy {
    next: usize,
    ntasks: usize,
}

impl DeadVictimSpinPolicy {
    /// A spinner over `ntasks` tasks.
    pub fn new(ntasks: usize) -> DeadVictimSpinPolicy {
        DeadVictimSpinPolicy { next: 0, ntasks }
    }
}

impl SchedulePolicy for DeadVictimSpinPolicy {
    fn name(&self) -> &'static str {
        "dead-victim-spin"
    }

    fn initial_partition(&self) -> Option<Vec<u32>> {
        None
    }

    fn next_task(&mut self, worker: usize) -> Claim {
        if worker == 0 {
            if self.next < self.ntasks {
                let begin = self.next;
                self.next = self.ntasks;
                Claim::Local {
                    begin,
                    end: self.ntasks,
                }
            } else {
                Claim::Done
            }
        } else {
            // Steal from a victim that will never have queued work, and
            // never give up — the structural livelock.
            Claim::StealFrom {
                victim: 0,
                amount: 0,
            }
        }
    }
}

/// Runs one seeded mutation through the probe and returns what the
/// verifier saw.
pub fn run_mutation(
    mutation: Mutation,
    base: &PolicyKind,
    ntasks: usize,
    workers: usize,
) -> ProbeOutcome {
    match mutation {
        Mutation::DeadVictimSpin => {
            let mut policy = DeadVictimSpinPolicy::new(ntasks);
            probe(&mut policy, ntasks, workers, mutation.name(), "mutation")
        }
        _ => {
            let mut policy = MutantPolicy::new(base, ntasks, workers, mutation);
            probe(&mut policy, ntasks, workers, mutation.name(), "mutation")
        }
    }
}

/// The canonical seeded-defect roster: one mutation per bug class the
/// verifier claims to detect.
pub fn mutation_roster(ntasks: usize) -> Vec<(Mutation, PolicyKind)> {
    vec![
        (
            Mutation::DropTask(ntasks / 2),
            PolicyKind::DynamicCounter { chunk: 3 },
        ),
        (Mutation::DropTask(0), PolicyKind::StaticCyclic),
        (Mutation::DuplicateTask(ntasks / 3), PolicyKind::StaticBlock),
        (
            Mutation::DuplicateTask(ntasks - 1),
            PolicyKind::Guided { min_chunk: 1 },
        ),
        (Mutation::DeadVictimSpin, PolicyKind::StaticBlock),
    ]
}

/// Runs every seeded mutation and checks each is flagged as exactly its
/// expected kind. The returned report's `passed` lists caught
/// mutations; any *escaped* mutation (verifier stayed silent, or spoke
/// with the wrong kind) is itself a violation — of the verifier.
pub fn self_test(ntasks: usize, workers: usize) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    for (mutation, base) in mutation_roster(ntasks) {
        let out = run_mutation(mutation, &base, ntasks, workers);
        let expected = mutation.expected_kind();
        let hits = out.violations.iter().filter(|v| v.kind == expected).count();
        if hits > 0 {
            report.passed.push((
                mutation.name().to_string(),
                format!("seeded:{}", base.name()),
            ));
        } else {
            report.violations.push(Violation::new(
                mutation.name(),
                expected,
                "mutation-escape",
                format!(
                    "seeded {} into {} but the probe reported {:?}",
                    mutation.name(),
                    base.name(),
                    out.violations
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 40;
    const P: usize = 4;

    #[test]
    fn dropped_task_is_flagged_and_located() {
        let out = run_mutation(
            Mutation::DropTask(N / 2),
            &PolicyKind::DynamicCounter { chunk: 3 },
            N,
            P,
        );
        let drops: Vec<_> = out
            .violations
            .iter()
            .filter(|v| v.kind == ViolationKind::TaskDropped)
            .collect();
        assert_eq!(drops.len(), 1, "{:?}", out.violations);
        assert_eq!(drops[0].task, Some(N / 2));
        // Only the seeded defect is reported — no collateral findings.
        assert_eq!(out.violations.len(), 1);
    }

    #[test]
    fn duplicated_task_is_flagged_with_both_workers_involved() {
        let out = run_mutation(
            Mutation::DuplicateTask(N / 3),
            &PolicyKind::StaticBlock,
            N,
            P,
        );
        let dups: Vec<_> = out
            .violations
            .iter()
            .filter(|v| v.kind == ViolationKind::TaskDuplicated)
            .collect();
        assert_eq!(dups.len(), 1, "{:?}", out.violations);
        assert_eq!(dups[0].task, Some(N / 3));
        assert!(dups[0].worker.is_some());
    }

    #[test]
    fn dead_victim_spin_is_flagged_as_livelock_not_hang() {
        let out = run_mutation(Mutation::DeadVictimSpin, &PolicyKind::StaticBlock, N, P);
        assert!(out.stalled, "probe must cut the spin short");
        assert!(out
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Livelock));
    }

    #[test]
    fn every_seeded_mutation_is_caught() {
        let report = self_test(N, P);
        assert!(
            report.is_clean(),
            "escaped mutations: {:?}",
            report.violations
        );
        assert_eq!(report.passed.len(), mutation_roster(N).len());
    }

    #[test]
    fn drop_at_claim_boundaries() {
        // Dropping the first and last task of a worker's block exercises
        // both split edges.
        for x in [0, N - 1, 9] {
            let out = run_mutation(Mutation::DropTask(x), &PolicyKind::StaticBlock, N, P);
            let drops: Vec<_> = out
                .violations
                .iter()
                .filter(|v| v.kind == ViolationKind::TaskDropped)
                .collect();
            assert_eq!(drops.len(), 1, "x={x}: {:?}", out.violations);
            assert_eq!(drops[0].task, Some(x));
        }
    }
}
