//! Structural deadlock / livelock detection.
//!
//! The verifier in [`crate::verifier`] *runs* schedules; this module
//! rejects bad configurations **without running anything**, from the
//! [`StealConfig`] / [`FaultPlan`] structure alone. It builds a
//! wait-for graph whose nodes are ranks (plus the shared-counter host
//! when the policy fetches from one) and whose edges are the waits a
//! configuration admits:
//!
//! * a thief waits on every rank its victim policy can select;
//! * a counter-based worker waits on the counter host;
//! * a sender whose message can be dropped waits on the retry path.
//!
//! Edges are **blocking** when the wait has no timeout to break it
//! (`rpc_timeout ≤ 0`), otherwise they are retried waits. Analysis uses
//! *may* semantics — a configuration is rejected if **some** schedule
//! can wedge, which is the right bar for a gate:
//!
//! * **Deadlock** — a live node with a blocking edge into the
//!   unresponsive set (dead ranks, a counter host that never fails
//!   over) can suspend forever; the unresponsive set is closed under
//!   this rule (fixpoint), so blocked waiters propagate.
//! * **Livelock** — a live node whose *every* steal target is
//!   unresponsive, under a plan with unbounded retries, spins forever
//!   re-issuing requests no one will answer. This is exactly the
//!   exhausted-retries work-stealing bug class fixed in the executor
//!   (commit e82b711): the detector rejects such configs up front.

use crate::report::{AnalysisReport, Violation, ViolationKind};
use emx_distsim::prelude::FaultPlan;
use emx_sched::{PolicyKind, StealConfig};

/// A node in the wait-for graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Party {
    /// Rank `w` of the simulated machine.
    Rank(usize),
    /// The shared-counter host (NXTVAL).
    Counter,
}

impl std::fmt::Display for Party {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Party::Rank(w) => write!(f, "rank {w}"),
            Party::Counter => f.write_str("counter host"),
        }
    }
}

/// Wait-for graph of one configuration. Node `0..workers` are ranks;
/// node `workers` (when present) is the counter host.
#[derive(Debug, Clone)]
pub struct WaitForGraph {
    /// Rank count (ranks are nodes `0..workers`).
    pub workers: usize,
    /// `edges[n]` = nodes that node `n` may wait on.
    pub edges: Vec<Vec<usize>>,
    /// Nodes that will never answer a request (dead ranks, a counter
    /// host whose outage never fails over).
    pub unresponsive: Vec<bool>,
    /// True when waits block with no timeout (`rpc_timeout ≤ 0`).
    pub blocking: bool,
    /// True when the plan bounds retries (a spinning requester
    /// eventually gives up and surfaces an error instead of wedging).
    pub bounded_retries: bool,
}

impl WaitForGraph {
    /// Nodes that some schedule can block forever: the closure of the
    /// unresponsive set under "has a blocking edge into it". Empty when
    /// waits carry a timeout.
    pub fn blocked_forever(&self) -> Vec<usize> {
        if !self.blocking {
            return Vec::new();
        }
        let mut stuck = self.unresponsive.clone();
        loop {
            let mut changed = false;
            for (n, targets) in self.edges.iter().enumerate() {
                if !stuck[n] && targets.iter().any(|&t| stuck[t]) {
                    stuck[n] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        (0..stuck.len())
            .filter(|&n| stuck[n] && !self.unresponsive[n])
            .collect()
    }

    /// Nodes that spin forever: live, retried (non-blocking) waits,
    /// unbounded retries, and *every* wait target unresponsive — no
    /// schedule can ever hand them work or an answer.
    pub fn spinning_forever(&self) -> Vec<usize> {
        if self.blocking || self.bounded_retries {
            return Vec::new();
        }
        self.edges
            .iter()
            .enumerate()
            .filter(|(n, targets)| {
                !self.unresponsive[*n]
                    && !targets.is_empty()
                    && targets.iter().all(|&t| self.unresponsive[t])
            })
            .map(|(n, _)| n)
            .collect()
    }
}

/// What the detector analyzes: a policy's wait topology under a fault
/// plan, plus the retry discipline of the hosting runtime.
#[derive(Debug, Clone)]
pub struct LivenessConfig<'a> {
    /// Rank count.
    pub workers: usize,
    /// Policy whose wait topology is analyzed.
    pub policy: &'a PolicyKind,
    /// Fault plan supplying the death schedule, outage and timeouts.
    pub plan: &'a FaultPlan,
    /// Retry cap of the hosting runtime (`None` = retry forever). The
    /// threaded executor's `FaultInjection::max_retries` maps here.
    pub retry_cap: Option<u32>,
}

fn steal_edges(cfg: &StealConfig, workers: usize) -> Vec<Vec<usize>> {
    // Both victim policies (Random, RoundRobin) range over every other
    // rank, so the may-wait set of a thief is all peers.
    let _ = cfg;
    (0..workers)
        .map(|w| (0..workers).filter(|&v| v != w).collect())
        .collect()
}

/// Builds the wait-for graph for `cfg` without simulating anything.
pub fn build_graph(cfg: &LivenessConfig<'_>) -> WaitForGraph {
    let p = cfg.workers;
    let uses_counter = matches!(
        cfg.policy,
        PolicyKind::DynamicCounter { .. }
            | PolicyKind::Guided { .. }
            | PolicyKind::GuidedAdaptive { .. }
    );
    let nodes = p + usize::from(uses_counter);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    match cfg.policy {
        PolicyKind::WorkStealing(sc) => {
            for (w, targets) in steal_edges(sc, p).into_iter().enumerate() {
                edges[w] = targets;
            }
        }
        PolicyKind::DynamicCounter { .. }
        | PolicyKind::Guided { .. }
        | PolicyKind::GuidedAdaptive { .. } => {
            for e in edges.iter_mut().take(p) {
                e.push(p); // every worker fetches from the counter host
            }
        }
        // Static policies and serial runs wait on nobody.
        _ => {}
    }

    let mut unresponsive = vec![false; nodes];
    for f in &cfg.plan.rank_failures {
        if f.rank < p {
            unresponsive[f.rank] = true;
        }
    }
    if uses_counter {
        if let Some(o) = &cfg.plan.counter_outage {
            // A failover that never completes leaves the counter dark.
            if never_fires(o.failover) || o.failover.is_infinite() {
                unresponsive[p] = true;
            }
        }
    }

    WaitForGraph {
        workers: p,
        edges,
        unresponsive,
        blocking: never_fires(cfg.plan.rpc_timeout),
        bounded_retries: cfg.retry_cap.is_some(),
    }
}

/// A timeout that can never fire — zero, negative, or NaN — so a wait
/// guarded only by it blocks forever.
fn never_fires(timeout: f64) -> bool {
    timeout.is_nan() || timeout <= 0.0
}

fn party(n: usize, workers: usize) -> Party {
    if n < workers {
        Party::Rank(n)
    } else {
        Party::Counter
    }
}

/// Structural liveness check of one configuration. Returns a clean
/// report for healthy configs; Deadlock / Livelock violations name the
/// wedged rank and the parties it waits on.
pub fn check_liveness(cfg: &LivenessConfig<'_>) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let label = cfg.policy.name();
    let graph = build_graph(cfg);

    for n in graph.blocked_forever() {
        let waits: Vec<String> = graph.edges[n]
            .iter()
            .filter(|&&t| graph.unresponsive[t])
            .map(|&t| party(t, cfg.workers).to_string())
            .collect();
        let mut v = Violation::new(
            label,
            ViolationKind::Deadlock,
            "config",
            format!(
                "{} can block forever: rpc_timeout ≤ 0 and it may wait on \
                 unresponsive {}",
                party(n, cfg.workers),
                waits.join(", ")
            ),
        );
        if n < cfg.workers {
            v = v.at_worker(n);
        }
        report.violations.push(v);
    }

    for n in graph.spinning_forever() {
        let mut v = Violation::new(
            label,
            ViolationKind::Livelock,
            "config",
            format!(
                "{} spins forever: every wait target is dead and retries \
                 are unbounded (the exhausted-retries bug class)",
                party(n, cfg.workers)
            ),
        );
        if n < cfg.workers {
            v = v.at_worker(n);
        }
        report.violations.push(v);
    }

    // Plan-shape rejections the simulator would only catch by panicking.
    if cfg.plan.drop_prob > 0.0 && never_fires(cfg.plan.rpc_timeout) {
        report.violations.push(Violation::new(
            label,
            ViolationKind::Deadlock,
            "config",
            "messages can be dropped but rpc_timeout ≤ 0: a dropped \
             request is never retried"
                .to_string(),
        ));
    }
    if !(0.0..1.0).contains(&cfg.plan.drop_prob) || !(0.0..1.0).contains(&cfg.plan.delay_prob) {
        report.violations.push(Violation::new(
            label,
            ViolationKind::OutOfRange,
            "config",
            format!(
                "message fault probabilities ({}, {}) outside [0, 1)",
                cfg.plan.drop_prob, cfg.plan.delay_prob
            ),
        ));
    }

    if report.is_clean() {
        report
            .passed
            .push((label.to_string(), "config".to_string()));
    }
    report
}

/// Sweeps the full roster × a set of fault plans through the structural
/// detector, for `reproduce analyze` and the gate tests.
pub fn check_roster_liveness(
    roster: &[PolicyKind],
    plans: &[(String, FaultPlan)],
    workers: usize,
    retry_cap: Option<u32>,
) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    for kind in roster {
        for (name, plan) in plans {
            let mut sub = check_liveness(&LivenessConfig {
                workers,
                policy: kind,
                plan,
                retry_cap,
            });
            // Re-label the generic "config" scenario with the plan name.
            for v in &mut sub.violations {
                v.scenario = format!("config:{name}");
            }
            for p in &mut sub.passed {
                p.1 = format!("config:{name}");
            }
            report.merge(sub);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 4;

    fn check(kind: &PolicyKind, plan: &FaultPlan, cap: Option<u32>) -> AnalysisReport {
        check_liveness(&LivenessConfig {
            workers: P,
            policy: kind,
            plan,
            retry_cap: cap,
        })
    }

    #[test]
    fn healthy_configs_pass() {
        let ws = PolicyKind::WorkStealing(StealConfig::default());
        let ctr = PolicyKind::DynamicCounter { chunk: 2 };
        let plan = FaultPlan::fault_free();
        for kind in [&ws, &ctr, &PolicyKind::StaticBlock] {
            let r = check(kind, &plan, None);
            assert!(r.is_clean(), "{}: {:?}", kind.name(), r.violations);
        }
    }

    #[test]
    fn one_dead_victim_with_timeout_is_fine() {
        let ws = PolicyKind::WorkStealing(StealConfig::default());
        let plan = FaultPlan::fault_free().with_rank_failure(2, 1e-6);
        let r = check(&ws, &plan, None);
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn dead_victim_without_timeout_deadlocks() {
        let ws = PolicyKind::WorkStealing(StealConfig::default());
        let mut plan = FaultPlan::fault_free().with_rank_failure(2, 1e-6);
        plan.rpc_timeout = 0.0;
        let r = check(&ws, &plan, None);
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Deadlock));
    }

    #[test]
    fn all_victims_dead_unbounded_retries_livelocks() {
        // The e82b711 bug class: the sole survivor steals from corpses
        // forever. Bounding retries clears the finding.
        let ws = PolicyKind::WorkStealing(StealConfig::default());
        let plan = FaultPlan::fault_free()
            .with_rank_failure(0, 1e-6)
            .with_rank_failure(1, 1e-6)
            .with_rank_failure(2, 1e-6);
        let r = check(&ws, &plan, None);
        let spin: Vec<_> = r
            .violations
            .iter()
            .filter(|v| v.kind == ViolationKind::Livelock)
            .collect();
        assert_eq!(spin.len(), 1, "{:?}", r.violations);
        assert_eq!(spin[0].worker, Some(3));

        let bounded = check(&ws, &plan, Some(3));
        assert!(bounded.is_clean(), "{:?}", bounded.violations);
    }

    #[test]
    fn counter_outage_that_never_fails_over_deadlocks_waiters() {
        let ctr = PolicyKind::DynamicCounter { chunk: 2 };
        let mut plan = FaultPlan::fault_free().with_counter_outage(1e-6, 0.0);
        plan.rpc_timeout = 0.0;
        let r = check(&ctr, &plan, None);
        let stuck: Vec<_> = r
            .violations
            .iter()
            .filter(|v| v.kind == ViolationKind::Deadlock)
            .collect();
        // All four workers wait on the dark counter host.
        assert_eq!(stuck.len(), P, "{:?}", r.violations);

        // With a failover that completes, the same outage is healthy.
        let ok_plan = FaultPlan::fault_free().with_counter_outage(1e-6, 5e-6);
        assert!(check(&ctr, &ok_plan, None).is_clean());
    }

    #[test]
    fn counter_spin_on_dark_host_with_unbounded_retries() {
        let ctr = PolicyKind::Guided { min_chunk: 1 };
        let plan = FaultPlan::fault_free().with_counter_outage(1e-6, f64::INFINITY);
        let r = check(&ctr, &plan, None);
        assert!(
            r.violations
                .iter()
                .any(|v| v.kind == ViolationKind::Livelock),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn dropped_messages_require_a_timeout() {
        let ws = PolicyKind::WorkStealing(StealConfig::default());
        let mut plan = FaultPlan::fault_free().with_message_faults(0.1, 0.0, 0.0);
        plan.rpc_timeout = 0.0;
        let r = check(&ws, &plan, None);
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Deadlock && v.detail.contains("dropped")));
    }

    #[test]
    fn static_policies_never_wedge() {
        // No waits → no deadlock even under a hostile plan.
        let mut plan = FaultPlan::fault_free()
            .with_rank_failure(0, 1e-6)
            .with_rank_failure(1, 1e-6)
            .with_rank_failure(2, 1e-6)
            .with_rank_failure(3, 1e-6);
        plan.rpc_timeout = 0.0;
        let r = check(&PolicyKind::StaticCyclic, &plan, None);
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn roster_sweep_labels_scenarios() {
        let roster = vec![
            PolicyKind::StaticBlock,
            PolicyKind::WorkStealing(StealConfig::default()),
        ];
        let plans = vec![
            ("healthy".to_string(), FaultPlan::fault_free()),
            ("one-death".to_string(), {
                FaultPlan::fault_free().with_rank_failure(1, 1e-6)
            }),
        ];
        let r = check_roster_liveness(&roster, &plans, P, Some(3));
        assert!(r.is_clean(), "{:?}", r.violations);
        assert!(r.passed.iter().any(|(_, s)| s == "config:one-death"));
    }
}
