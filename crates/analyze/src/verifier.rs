//! The schedule verifier.
//!
//! For every [`PolicyKind`] this module checks the invariants the rest
//! of the workspace merely asserts in passing:
//!
//! * **Exactly-once coverage** — the sequential replay assigns each of
//!   `0..ntasks` to exactly one worker (via [`crate::replay::probe`]).
//! * **Bounded idle** — no worker spends more than a small, topology-
//!   derived number of scheduling rounds neither obtaining work nor
//!   retiring.
//! * **Determinism** — two identically-configured replays agree; any
//!   divergence means hidden state (wall clock, ambient RNG) leaked
//!   into a replay path.
//! * **Cross-substrate agreement** — deterministic policies produce the
//!   same task→worker map on the sequential replay, the discrete-event
//!   simulator and the threaded executor; dynamic policies keep
//!   exactly-once on every substrate.
//! * **Fault tolerance** — under every fault scenario ×
//!   [`RecoveryPolicy`], work is conserved (`executed + lost = total`),
//!   nothing is lost while survivors remain, orphans are recovered, no
//!   recovery completes faster than the failure could be detected, and
//!   the whole degraded run is reproducible.
//!
//! Combinations the fault simulator cannot express are recorded in
//! [`AnalysisReport::skipped`] — never silently dropped.

use crate::replay::probe;
use crate::report::{AnalysisReport, Violation, ViolationKind};
use emx_distsim::prelude::{
    simulate_policy, simulate_with_faults, FaultPlan, RecoveryPolicy, SimConfig, SimModel,
};
use emx_runtime::pool::Executor;
use emx_sched::{build_policy, PolicyKind};
use std::sync::{Arc, Mutex};

/// Workload shape the verifier drives every policy through.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Number of tasks in the synthetic workload.
    pub ntasks: usize,
    /// Worker / rank count.
    pub workers: usize,
    /// Chunk size used when building counter-based rosters.
    pub chunk: usize,
    /// Also run the threaded executor as a third substrate. Off for
    /// unit tests that must stay single-threaded (miri, loom builds).
    pub threads: bool,
}

impl Default for VerifierConfig {
    fn default() -> VerifierConfig {
        VerifierConfig {
            ntasks: 96,
            workers: 6,
            chunk: 4,
            threads: true,
        }
    }
}

impl VerifierConfig {
    /// Synthetic task costs: a deterministic skewed profile (heavy head,
    /// light tail) that exercises rebalancing without any RNG.
    pub fn costs(&self) -> Vec<f64> {
        (0..self.ntasks)
            .map(|i| 1e-6 * (1.0 + ((self.ntasks - i) as f64) / 8.0))
            .collect()
    }
}

/// The policy roster the verifier sweeps: every [`PolicyKind`] variant,
/// including the two assignment-carrying ones. `full_roster` covers all
/// but `StaticAssigned`; a reversed-block explicit map is appended so
/// the sweep reaches that variant too.
pub fn verification_roster(cfg: &VerifierConfig) -> Vec<PolicyKind> {
    let costs = cfg.costs();
    let mut out: Vec<PolicyKind> = PolicyKind::full_roster(&costs, cfg.workers, cfg.chunk)
        .into_iter()
        .map(|(_, k)| k)
        .collect();
    let owners: Vec<u32> = (0..cfg.ntasks)
        .map(|i| (cfg.workers - 1 - i * cfg.workers / cfg.ntasks.max(1)) as u32)
        .collect();
    out.push(PolicyKind::StaticAssigned(Arc::new(owners)));
    out
}

/// Named fault scenarios crossed with every recovery policy by
/// [`verify_policy_faults`]. All times are in simulated seconds and sit
/// well inside the synthetic workload's makespan.
pub fn fault_scenarios(cfg: &VerifierConfig) -> Vec<(String, FaultPlan)> {
    let p = cfg.workers;
    let mut out = vec![
        ("healthy".to_string(), FaultPlan::fault_free()),
        (
            "one-death".to_string(),
            FaultPlan::fault_free().with_rank_failure(p - 1, 2e-6),
        ),
        (
            "two-deaths".to_string(),
            FaultPlan::fault_free()
                .with_rank_failure(1, 2e-6)
                .with_rank_failure(p - 1, 4e-6),
        ),
        (
            "message-chaos".to_string(),
            FaultPlan::fault_free().with_message_faults(0.2, 0.2, 3e-6),
        ),
        (
            "death-plus-chaos".to_string(),
            FaultPlan::fault_free()
                .with_rank_failure(0, 3e-6)
                .with_message_faults(0.1, 0.1, 2e-6),
        ),
        (
            "counter-outage".to_string(),
            FaultPlan::fault_free().with_counter_outage(2e-6, 10e-6),
        ),
    ];
    for (_, plan) in &mut out {
        // A positive timeout keeps dead-rank round trips bounded in
        // every scenario; healthy runs never consult it.
        plan.rpc_timeout = 50e-6;
    }
    out
}

fn assignment_from_threads(kind: &PolicyKind, ntasks: usize, workers: usize) -> Vec<Vec<usize>> {
    let exec = Executor::new(workers, kind.clone());
    let (locals, _report) = exec.run(
        ntasks,
        |_w| Vec::new(),
        |i, local: &mut Vec<usize>| local.push(i),
    );
    locals
}

/// Healthy-path verification of one policy: exactly-once, bounded idle,
/// replay determinism, and cross-substrate agreement.
pub fn verify_policy(kind: &PolicyKind, cfg: &VerifierConfig) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let label = kind.name();
    let scenario = "healthy";

    // Substrate 1: sequential replay, probed twice for determinism.
    let mut p1 = build_policy(kind, cfg.ntasks, cfg.workers);
    let out1 = probe(p1.as_mut(), cfg.ntasks, cfg.workers, label, scenario);
    report.violations.extend(out1.violations.clone());
    let mut p2 = build_policy(kind, cfg.ntasks, cfg.workers);
    let out2 = probe(p2.as_mut(), cfg.ntasks, cfg.workers, label, scenario);
    if out1.assignment != out2.assignment {
        report.violations.push(Violation::new(
            label,
            ViolationKind::Nondeterminism,
            scenario,
            "two identically-configured replays produced different assignments",
        ));
    }

    // Bounded idle: the replay budget flags unbounded spin as Livelock;
    // here we additionally bound *transient* idle. A worker may wait for
    // one redistribution chain (≤ workers rounds) plus slack.
    let idle_bound = 2 * cfg.workers as u64 + 4;
    if !out1.stalled && out1.max_idle_rounds > idle_bound {
        report.violations.push(Violation::new(
            label,
            ViolationKind::UnboundedIdle,
            scenario,
            format!(
                "{} consecutive fruitless rounds observed (bound {idle_bound})",
                out1.max_idle_rounds
            ),
        ));
    }

    // Substrate 2: the discrete-event simulator. Speculation has no
    // SimModel (its aborts and in-order commits are a protocol, not a
    // partition) but `simulate_policy` replays it directly, so its
    // exactly-once behavior is still checked on this substrate.
    let sim_cfg = SimConfig::new(cfg.workers);
    let costs = cfg.costs();
    if SimModel::from_policy(kind, cfg.ntasks, cfg.workers).is_some()
        || matches!(kind, PolicyKind::Speculative(_))
    {
        let sim = simulate_policy(&costs, kind, &sim_cfg);
        if kind.is_deterministic() {
            if sim.assignment != out1.assignment_or_max() {
                report.violations.push(Violation::new(
                    label,
                    ViolationKind::SubstrateMismatch,
                    scenario,
                    "simulator assignment differs from sequential replay \
                     for a deterministic policy",
                ));
            }
        } else {
            // Dynamic policies keep exactly-once on the simulator too.
            let mut seen = vec![0u32; cfg.ntasks];
            for (i, &w) in sim.assignment.iter().enumerate() {
                if (w as usize) < cfg.workers {
                    seen[i] += 1;
                } else {
                    report.violations.push(
                        Violation::new(
                            label,
                            ViolationKind::OutOfRange,
                            scenario,
                            format!("simulator assigned task {i} to worker {w}"),
                        )
                        .at_task(i),
                    );
                }
            }
            for (i, &n) in seen.iter().enumerate() {
                if n == 0 {
                    report.violations.push(
                        Violation::new(
                            label,
                            ViolationKind::TaskDropped,
                            scenario,
                            format!("simulator never ran task {i}"),
                        )
                        .at_task(i),
                    );
                }
            }
        }
    } else {
        report.skipped.push(format!(
            "{label}/simulator: no SimModel equivalent for this policy"
        ));
    }

    // Substrate 3: the threaded executor.
    if cfg.threads {
        let locals = assignment_from_threads(kind, cfg.ntasks, cfg.workers);
        let mut owner = vec![None::<usize>; cfg.ntasks];
        for (w, tasks) in locals.iter().enumerate() {
            for &i in tasks {
                match owner[i] {
                    Some(prev) => report.violations.push(
                        Violation::new(
                            label,
                            ViolationKind::TaskDuplicated,
                            scenario,
                            format!("threads ran task {i} on workers {prev} and {w}"),
                        )
                        .at_task(i)
                        .at_worker(w),
                    ),
                    None => owner[i] = Some(w),
                }
            }
        }
        for (i, o) in owner.iter().enumerate() {
            if o.is_none() {
                report.violations.push(
                    Violation::new(
                        label,
                        ViolationKind::TaskDropped,
                        scenario,
                        format!("threads never ran task {i}"),
                    )
                    .at_task(i),
                );
            }
        }
        if kind.is_deterministic() {
            let threads: Vec<u32> = owner
                .iter()
                .map(|o| o.map_or(u32::MAX, |w| w as u32))
                .collect();
            if threads != out1.assignment_or_max() {
                report.violations.push(Violation::new(
                    label,
                    ViolationKind::SubstrateMismatch,
                    scenario,
                    "threaded executor assignment differs from sequential \
                     replay for a deterministic policy",
                ));
            }
        }
    }

    if report.is_clean() {
        report
            .passed
            .push((label.to_string(), scenario.to_string()));
    }
    report
}

/// Fault-tolerance verification of one policy: every scenario from
/// [`fault_scenarios`] crossed with every [`RecoveryPolicy`].
pub fn verify_policy_faults(kind: &PolicyKind, cfg: &VerifierConfig) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let label = kind.name();
    let Some(model) = SimModel::from_policy(kind, cfg.ntasks, cfg.workers) else {
        report.skipped.push(format!(
            "{label}/faults: no SimModel equivalent for this policy"
        ));
        return report;
    };
    let costs = cfg.costs();
    let sim_cfg = SimConfig::new(cfg.workers);

    for (name, base_plan) in fault_scenarios(cfg) {
        for recovery in [
            RecoveryPolicy::BlockSurvivors,
            RecoveryPolicy::SemiMatching,
            RecoveryPolicy::Persistence,
        ] {
            let scenario = format!("{name}/{}", recovery.name());
            let plan = base_plan.clone().with_recovery(recovery);
            let r = simulate_with_faults(&costs, &model, &sim_cfg, &plan);
            let executed: usize = r.sim.tasks.iter().sum();
            let deaths = {
                let mut ranks: Vec<usize> = plan.rank_failures.iter().map(|f| f.rank).collect();
                ranks.sort_unstable();
                ranks.dedup();
                ranks.len()
            };
            let survivors = cfg.workers - deaths;

            if executed + r.faults.lost as usize != cfg.ntasks {
                report.violations.push(Violation::new(
                    label,
                    ViolationKind::AccountingLeak,
                    &scenario,
                    format!(
                        "executed {executed} + lost {} != {} tasks",
                        r.faults.lost, cfg.ntasks
                    ),
                ));
            }
            if survivors > 0 && r.faults.lost > 0 {
                report.violations.push(Violation::new(
                    label,
                    ViolationKind::LostTask,
                    &scenario,
                    format!(
                        "{} tasks lost although {survivors} ranks survived",
                        r.faults.lost
                    ),
                ));
            }
            if r.faults.lost == 0 && r.faults.recovered != r.faults.orphaned {
                report.violations.push(Violation::new(
                    label,
                    ViolationKind::AccountingLeak,
                    &scenario,
                    format!(
                        "orphaned {} but recovered {} with nothing lost",
                        r.faults.orphaned, r.faults.recovered
                    ),
                ));
            }
            for &lat in &r.faults.recovery_latency {
                if lat + 1e-12 < plan.detection_interval {
                    report.violations.push(Violation::new(
                        label,
                        ViolationKind::EarlyRecovery,
                        &scenario,
                        format!(
                            "recovery latency {lat:.2e}s beats the \
                             {:.2e}s detection interval",
                            plan.detection_interval
                        ),
                    ));
                    break;
                }
            }

            // Degraded-mode determinism: the whole faulty run replays.
            let again = simulate_with_faults(&costs, &model, &sim_cfg, &plan);
            if again.sim.assignment != r.sim.assignment
                || again.faults.lost != r.faults.lost
                || again.faults.recovered != r.faults.recovered
            {
                report.violations.push(Violation::new(
                    label,
                    ViolationKind::Nondeterminism,
                    &scenario,
                    "two identically-seeded fault-injected runs disagreed",
                ));
            }

            let clean_before = report
                .violations
                .iter()
                .filter(|v| v.scenario == scenario && v.policy == label)
                .count();
            if clean_before == 0 {
                report.passed.push((label.to_string(), scenario));
            }
        }
    }
    report
}

/// Speculation-protocol verification, driving `emx-spec` directly
/// (the substrates above only see speculation's task→worker map; this
/// pass checks the transactional invariants underneath it):
///
/// * **Deterministic commit** — the committed state and per-transaction
///   outputs equal the serial replay bit-for-bit at every worker count;
/// * **Abort-count conservation** — `executions = commits + aborts +
///   stalls` (every execution attempt commits, is aborted, or stalled
///   on an in-flight dependency and retried) and `Σ incarnations =
///   aborts` (each abort bumps exactly one transaction's incarnation
///   counter, monotonically);
/// * **No spurious speculation** — a single worker, claiming in block
///   order, never aborts and never stalls;
/// * **Re-execution determinism** — two identical runs commit the same
///   state even when their abort histories differ.
pub fn verify_speculation(cfg: &VerifierConfig) -> AnalysisReport {
    use emx_spec::{execute_serial, execute_transactions, TxnCtx};
    let mut report = AnalysisReport::default();
    let label = "speculative";
    let n = cfg.ntasks;
    // A read-modify-write chain through one shared location: every
    // transaction conflicts with its predecessor — the hardest case
    // for optimistic execution. The yields invite preemption between
    // read and write so aborts actually occur even on one core.
    let body = |i: usize, ctx: &mut TxnCtx<u64>| {
        let seen = *ctx.read(0)?;
        for _ in 0..2 {
            std::thread::yield_now();
        }
        ctx.write(0, seen + 1 + (i as u64 % 3));
        Ok(seen)
    };
    let (serial_vals, serial_outs) = execute_serial(vec![0u64], n, body);
    for p in [1, 2, cfg.workers.max(2)] {
        let scenario = format!("speculation/workers={p}");
        let spec = execute_transactions(p, vec![0u64], n, body);
        if spec.values != serial_vals || spec.outputs != serial_outs {
            report.violations.push(Violation::new(
                label,
                ViolationKind::SubstrateMismatch,
                &scenario,
                "committed state or outputs diverged from the serial replay",
            ));
        }
        if spec.stats.commits != n {
            report.violations.push(Violation::new(
                label,
                ViolationKind::AccountingLeak,
                &scenario,
                format!("{} commits for {n} transactions", spec.stats.commits),
            ));
        }
        if spec.stats.executions != spec.stats.commits + spec.stats.aborts + spec.stats.stalls {
            report.violations.push(Violation::new(
                label,
                ViolationKind::AccountingLeak,
                &scenario,
                format!(
                    "executions {} != commits {} + aborts {} + stalls {}",
                    spec.stats.executions, spec.stats.commits, spec.stats.aborts, spec.stats.stalls
                ),
            ));
        }
        let incarnations: u64 = spec.stats.incarnations.iter().map(|&x| x as u64).sum();
        if incarnations != spec.stats.aborts as u64 {
            report.violations.push(Violation::new(
                label,
                ViolationKind::AccountingLeak,
                &scenario,
                format!(
                    "incarnation counters sum to {incarnations} but {} aborts occurred",
                    spec.stats.aborts
                ),
            ));
        }
        for (i, &w) in spec.assignment.iter().enumerate() {
            if w as usize >= p {
                report.violations.push(
                    Violation::new(
                        label,
                        ViolationKind::OutOfRange,
                        &scenario,
                        format!("transaction {i} committed by worker {w} of {p}"),
                    )
                    .at_task(i),
                );
            }
        }
        if p == 1 && (spec.stats.aborts != 0 || spec.stats.stalls != 0) {
            report.violations.push(Violation::new(
                label,
                ViolationKind::AccountingLeak,
                &scenario,
                format!(
                    "single worker aborted {} / stalled {} times",
                    spec.stats.aborts, spec.stats.stalls
                ),
            ));
        }
        let again = execute_transactions(p, vec![0u64], n, body);
        if again.values != spec.values || again.outputs != spec.outputs {
            report.violations.push(Violation::new(
                label,
                ViolationKind::Nondeterminism,
                &scenario,
                "two identical speculative runs committed different state",
            ));
        }
        let clean = !report
            .violations
            .iter()
            .any(|v| v.scenario == scenario && v.policy == label);
        if clean {
            report.passed.push((label.to_string(), scenario));
        }
    }
    report
}

/// Runs the full verification: every roster policy through the healthy
/// checks and the fault matrix, plus the speculation-protocol pass.
/// This is what `reproduce analyze` and the CI gate execute.
pub fn verify_all(cfg: &VerifierConfig) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    for kind in verification_roster(cfg) {
        report.merge(verify_policy(&kind, cfg));
        report.merge(verify_policy_faults(&kind, cfg));
    }
    report.merge(verify_speculation(cfg));
    report
}

/// A [`Mutex`]-guarded scratch used by tests that tweak process-wide
/// state; exported so integration tests across the crate serialize.
pub static VERIFY_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> VerifierConfig {
        VerifierConfig {
            ntasks: 48,
            workers: 4,
            chunk: 3,
            threads: false,
        }
    }

    #[test]
    fn roster_covers_every_policy_kind_variant() {
        let cfg = quick();
        let roster = verification_roster(&cfg);
        let mut variants: Vec<&str> = roster.iter().map(|k| k.name()).collect();
        variants.sort_unstable();
        variants.dedup();
        // One roster entry per PolicyKind variant (canonical_names is
        // the registry's own variant list).
        for name in PolicyKind::canonical_names() {
            assert!(
                variants.iter().any(|v| v == name),
                "roster misses variant {name}"
            );
        }
    }

    #[test]
    fn healthy_roster_verifies_clean() {
        let cfg = quick();
        for kind in verification_roster(&cfg) {
            let r = verify_policy(&kind, &cfg);
            assert!(r.is_clean(), "{}: {:?}", kind.name(), r.violations);
            assert_eq!(r.passed.len(), 1);
        }
    }

    #[test]
    fn fault_matrix_verifies_clean_and_skips_are_explicit() {
        let cfg = quick();
        let mut expressible = 0;
        for kind in verification_roster(&cfg) {
            let r = verify_policy_faults(&kind, &cfg);
            assert!(r.is_clean(), "{}: {:?}", kind.name(), r.violations);
            if r.skipped.is_empty() {
                expressible += 1;
                // 6 scenarios × 3 recovery policies all passed.
                assert_eq!(r.passed.len(), 18, "{}", kind.name());
            } else {
                assert!(r.passed.is_empty());
            }
        }
        assert!(
            expressible >= 5,
            "fault matrix covered {expressible} policies"
        );
    }

    #[test]
    fn speculation_invariants_hold() {
        let cfg = quick();
        let r = verify_speculation(&cfg);
        assert!(r.is_clean(), "{:?}", r.violations);
        // One passing entry per verified worker count, no silent skips.
        assert_eq!(r.passed.len(), 3);
        assert!(r.skipped.is_empty());
    }

    #[test]
    fn threaded_substrate_agrees() {
        let cfg = VerifierConfig {
            threads: true,
            ..quick()
        };
        for kind in [
            PolicyKind::StaticBlock,
            PolicyKind::DynamicCounter { chunk: 3 },
            PolicyKind::WorkStealing(Default::default()),
        ] {
            let r = verify_policy(&kind, &cfg);
            assert!(r.is_clean(), "{}: {:?}", kind.name(), r.violations);
        }
    }
}
