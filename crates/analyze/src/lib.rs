//! # emx-analyze — static analysis of scheduling correctness
//!
//! The workspace's other crates *run* schedules; this crate proves
//! things about them before (and after) they run:
//!
//! * [`verifier`] — drives every [`emx_sched::PolicyKind`] through the
//!   sequential replay, the discrete-event simulator and the threaded
//!   executor, checking exactly-once coverage, bounded idle, replay
//!   determinism, cross-substrate agreement, and the full fault-
//!   scenario × recovery-policy matrix (work conservation, no lost
//!   tasks while survivors remain, orphan recovery, detection-bounded
//!   recovery latency, degraded-mode determinism), plus the
//!   speculation-protocol pass (deterministic commit vs serial replay,
//!   abort-count conservation, incarnation accounting) over `emx-spec`.
//! * [`waitfor`] — rejects wedgeable configurations *structurally*,
//!   from [`emx_sched::StealConfig`] / fault-plan shape alone, via a
//!   wait-for graph: blocking waits into dead parties (deadlock) and
//!   all-victims-dead spin with unbounded retries (livelock, the
//!   exhausted-retries bug class).
//! * [`mutation`] — the self-test: seeds known defects (dropped task,
//!   double assignment, dead-victim spin) into healthy policies and
//!   asserts the verifier flags each as exactly the expected
//!   [`report::ViolationKind`]. A verifier that cannot see the seeded
//!   bugs fails its own gate.
//! * [`report`] — the shared, machine-readable violation vocabulary
//!   (JSON via `emx-obs`), consumed by `reproduce analyze` and CI.
//!
//! See `docs/ANALYSIS.md` for the invariant catalogue and how the
//! loom / miri / sanitizer walls complement these checks.

#![warn(missing_docs)]

pub mod mutation;
pub mod replay;
pub mod report;
pub mod verifier;
pub mod waitfor;

/// Common imports.
pub mod prelude {
    pub use crate::mutation::{run_mutation, self_test, DeadVictimSpinPolicy, Mutation};
    pub use crate::replay::{probe, probe_with_budget, ProbeOutcome};
    pub use crate::report::{AnalysisReport, Violation, ViolationKind};
    pub use crate::verifier::{
        fault_scenarios, verification_roster, verify_all, verify_policy, verify_policy_faults,
        verify_speculation, VerifierConfig,
    };
    pub use crate::waitfor::{
        build_graph, check_liveness, check_roster_liveness, LivenessConfig, WaitForGraph,
    };
}
