//! Karmarkar–Karp largest-differencing multiway partitioning.
//!
//! The differencing method beats greedy LPT precisely where LPT
//! struggles — a few large tasks whose pairing matters — at
//! `O(n log n)` cost. It rounds out the study's cost/quality spectrum
//! between LPT and the refinement-based balancers.
//!
//! k-way scheme (Korf's generalization): every task starts as a k-tuple
//! of part loads `(w, 0, …, 0)`; repeatedly merge the two tuples with
//! the largest spread by pairing heaviest-against-lightest slots, until
//! one tuple remains. Its slots are the parts.

use crate::problem::{Assignment, Problem};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One partial solution: `k` slot loads (descending) plus the tasks in
/// each slot.
struct Tuple {
    loads: Vec<f64>,
    members: Vec<Vec<usize>>,
}

impl Tuple {
    fn spread(&self) -> f64 {
        self.loads[0] - self.loads[self.loads.len() - 1]
    }
}

struct BydSpread(Tuple);

impl PartialEq for BydSpread {
    fn eq(&self, other: &Self) -> bool {
        self.0.spread() == other.0.spread()
    }
}
impl Eq for BydSpread {}
impl PartialOrd for BydSpread {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BydSpread {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .spread()
            .partial_cmp(&other.0.spread())
            .expect("NaN spread")
            // Deterministic tie-break on the heaviest slot.
            .then(
                self.0.loads[0]
                    .partial_cmp(&other.0.loads[0])
                    .expect("NaN load"),
            )
    }
}

/// Computes a Karmarkar–Karp assignment of `problem` onto its workers.
pub fn karmarkar_karp(problem: &Problem) -> Assignment {
    let k = problem.workers;
    let n = problem.ntasks();
    if n == 0 {
        return Vec::new();
    }
    if k == 1 {
        return vec![0; n];
    }
    let mut heap: BinaryHeap<BydSpread> = (0..n)
        .map(|t| {
            let mut loads = vec![0.0; k];
            loads[0] = problem.weights[t];
            let mut members = vec![Vec::new(); k];
            members[0].push(t);
            BydSpread(Tuple { loads, members })
        })
        .collect();

    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1").0;
        let b = heap.pop().expect("len > 1").0;
        // Pair a's heaviest with b's lightest slot.
        let mut loads = vec![0.0; k];
        let mut members = vec![Vec::new(); k];
        for i in 0..k {
            loads[i] = a.loads[i] + b.loads[k - 1 - i];
            members[i] = a.members[i].clone();
            members[i].extend_from_slice(&b.members[k - 1 - i]);
        }
        // Re-sort slots descending by load (carry members along).
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&x, &y| loads[y].partial_cmp(&loads[x]).expect("NaN load"));
        let loads = order.iter().map(|&i| loads[i]).collect();
        let members = order
            .iter()
            .map(|&i| std::mem::take(&mut members[i]))
            .collect();
        heap.push(BydSpread(Tuple { loads, members }));
    }

    let final_tuple = heap.pop().expect("one tuple remains").0;
    let mut assignment = vec![0u32; n];
    for (slot, tasks) in final_tuple.members.iter().enumerate() {
        for &t in tasks {
            assignment[t] = slot as u32;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpt::lpt;
    use crate::problem::is_valid;

    #[test]
    fn beats_lpt_on_the_classic_instance() {
        // {8,7,6,5,4}/2: LPT ties at (13,13) then dumps the 4 → 17;
        // differencing reaches 16 (optimum is 15 — KK is a heuristic,
        // and this instance is the textbook example of its gap).
        let p = Problem::new(vec![8.0, 7.0, 6.0, 5.0, 4.0], 2);
        let a = karmarkar_karp(&p);
        assert!(is_valid(&a, 5, 2));
        assert_eq!(p.makespan(&a), 16.0, "{a:?}");
        assert_eq!(p.makespan(&lpt(&p)), 17.0);
    }

    #[test]
    fn lpt_trap_instance_matches_known_kk_result() {
        // {3,3,2,2,2}/2: differencing pairs the 3s first and ends at
        // (7,5) — the documented KK outcome (optimum is (6,6), which
        // the semi-matching swap refinement does find).
        let p = Problem::new(vec![3.0, 3.0, 2.0, 2.0, 2.0], 2);
        let a = karmarkar_karp(&p);
        assert_eq!(p.makespan(&a), 7.0, "{a:?}");
    }

    #[test]
    fn three_way_partition_quality() {
        let p = Problem::new(vec![5.0, 5.0, 4.0, 3.0, 3.0, 2.0, 2.0], 3);
        let a = karmarkar_karp(&p);
        assert!(is_valid(&a, 7, 3));
        // Total 24, LB = 8; KK must stay within one small task of it
        // and never lose to LPT here.
        assert!(p.makespan(&a) <= 10.0, "{a:?}");
        assert!(p.makespan(&a) <= p.makespan(&lpt(&p)) + 1e-12);
    }

    #[test]
    fn never_much_worse_than_lpt_on_random_inputs() {
        for seed in 0..30u64 {
            let weights: Vec<f64> = (0..60)
                .map(|i| 1.0 + ((seed * 131 + i * 17) % 97) as f64)
                .collect();
            let p = Problem::new(weights, 7);
            let kk = p.makespan(&karmarkar_karp(&p));
            let greedy = p.makespan(&lpt(&p));
            assert!(
                kk <= greedy * 1.05 + 1e-9,
                "seed {seed}: kk {kk} vs lpt {greedy}"
            );
            assert!(kk + 1e-9 >= p.lower_bound());
        }
    }

    #[test]
    fn degenerate_cases() {
        assert!(karmarkar_karp(&Problem::new(vec![], 3)).is_empty());
        assert_eq!(karmarkar_karp(&Problem::new(vec![2.0, 1.0], 1)), vec![0, 0]);
        let p = Problem::new(vec![4.0], 3);
        let a = karmarkar_karp(&p);
        assert!(is_valid(&a, 1, 3));
    }

    #[test]
    fn deterministic() {
        let p = Problem::new(vec![9.0, 4.0, 4.0, 4.0, 3.0, 1.0], 3);
        assert_eq!(karmarkar_karp(&p), karmarkar_karp(&p));
    }
}
