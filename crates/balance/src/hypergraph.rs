//! Hypergraph model of a task set.
//!
//! Vertices are tasks (weighted by cost); each *net* (hyperedge) groups
//! the tasks touching one shared data block (a density/Fock shell-pair
//! block in the chemistry kernel). A k-way partition then balances
//! computation while its **connectivity-λ−1** metric counts the data
//! blocks that must be replicated/communicated — the classical
//! partitioning model the paper uses as its expensive baseline.

/// A hypergraph with weighted vertices and nets.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    /// Vertex (task) weights.
    pub vwts: Vec<f64>,
    /// Nets: each lists its pin vertices (deduplicated, sorted).
    pub nets: Vec<Vec<u32>>,
    /// Net weights (communication volume of the block).
    pub nwts: Vec<f64>,
}

impl Hypergraph {
    /// Creates a hypergraph; nets are deduplicated/sorted, singleton and
    /// empty nets are dropped (they can never be cut).
    pub fn new(vwts: Vec<f64>, nets: Vec<Vec<u32>>, nwts: Vec<f64>) -> Hypergraph {
        assert_eq!(nets.len(), nwts.len(), "net/weight length mismatch");
        let nv = vwts.len() as u32;
        let mut out_nets = Vec::with_capacity(nets.len());
        let mut out_nwts = Vec::with_capacity(nets.len());
        for (mut net, w) in nets.into_iter().zip(nwts) {
            net.sort_unstable();
            net.dedup();
            assert!(net.iter().all(|&v| v < nv), "net pin out of range");
            if net.len() >= 2 {
                out_nets.push(net);
                out_nwts.push(w);
            }
        }
        Hypergraph {
            vwts,
            nets: out_nets,
            nwts: out_nwts,
        }
    }

    /// Builds the task-affinity hypergraph: `touches[t]` lists the data
    /// blocks task `t` reads/writes; each block with ≥ 2 tasks becomes a
    /// net of unit weight.
    pub fn from_affinities(vwts: Vec<f64>, touches: &[Vec<u32>], nblocks: usize) -> Hypergraph {
        assert_eq!(vwts.len(), touches.len(), "weights/touches length mismatch");
        let mut block_tasks: Vec<Vec<u32>> = vec![Vec::new(); nblocks];
        for (t, blocks) in touches.iter().enumerate() {
            for &b in blocks {
                block_tasks[b as usize].push(t as u32);
            }
        }
        let nwts = vec![1.0; block_tasks.len()];
        Hypergraph::new(vwts, block_tasks, nwts)
    }

    /// Number of vertices.
    pub fn nv(&self) -> usize {
        self.vwts.len()
    }

    /// Total pin count (Σ net sizes).
    pub fn pins(&self) -> usize {
        self.nets.iter().map(|n| n.len()).sum()
    }

    /// Vertex→net incidence lists.
    pub fn vertex_nets(&self) -> Vec<Vec<u32>> {
        let mut inc = vec![Vec::new(); self.nv()];
        for (ni, net) in self.nets.iter().enumerate() {
            for &v in net {
                inc[v as usize].push(ni as u32);
            }
        }
        inc
    }

    /// Per-part vertex weight of a partition.
    pub fn part_weights(&self, parts: &[u32], k: usize) -> Vec<f64> {
        assert_eq!(parts.len(), self.nv(), "partition length mismatch");
        let mut w = vec![0.0; k];
        for (v, &p) in parts.iter().enumerate() {
            assert!((p as usize) < k, "part id out of range");
            w[p as usize] += self.vwts[v];
        }
        w
    }

    /// Connectivity-minus-one cut: `Σ_nets w · (λ(net) − 1)` where λ is
    /// the number of parts the net spans.
    pub fn connectivity_cut(&self, parts: &[u32], k: usize) -> f64 {
        assert_eq!(parts.len(), self.nv(), "partition length mismatch");
        let mut seen = vec![u32::MAX; k];
        let mut cut = 0.0;
        for (ni, net) in self.nets.iter().enumerate() {
            let mut lambda = 0u32;
            for &v in net {
                let p = parts[v as usize] as usize;
                if seen[p] != ni as u32 {
                    seen[p] = ni as u32;
                    lambda += 1;
                }
            }
            cut += self.nwts[ni] * (lambda.saturating_sub(1)) as f64;
        }
        cut
    }

    /// Number of nets spanning more than one part.
    pub fn cut_nets(&self, parts: &[u32]) -> usize {
        self.nets
            .iter()
            .filter(|net| {
                let p0 = parts[net[0] as usize];
                net.iter().any(|&v| parts[v as usize] != p0)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        // 6 vertices; nets {0,1,2}, {2,3}, {3,4,5}, singleton {5} dropped.
        Hypergraph::new(
            vec![1.0; 6],
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![5]],
            vec![1.0, 2.0, 1.0, 9.0],
        )
    }

    #[test]
    fn construction_drops_trivial_nets() {
        let hg = sample();
        assert_eq!(hg.nets.len(), 3);
        assert_eq!(hg.pins(), 8);
    }

    #[test]
    fn dedups_pins() {
        let hg = Hypergraph::new(vec![1.0; 3], vec![vec![1, 1, 2, 2]], vec![1.0]);
        assert_eq!(hg.nets[0], vec![1, 2]);
    }

    #[test]
    fn connectivity_cut_values() {
        let hg = sample();
        // All in one part: zero cut.
        assert_eq!(hg.connectivity_cut(&[0; 6], 2), 0.0);
        // Split {0,1,2} | {3,4,5}: net0 uncut, net1 cut (λ=2 → +2.0),
        // net2 uncut.
        let parts = vec![0, 0, 0, 1, 1, 1];
        assert_eq!(hg.connectivity_cut(&parts, 2), 2.0);
        assert_eq!(hg.cut_nets(&parts), 1);
    }

    #[test]
    fn lambda_counts_parts_not_pins() {
        let hg = Hypergraph::new(vec![1.0; 4], vec![vec![0, 1, 2, 3]], vec![1.0]);
        // Net spans 3 parts → λ−1 = 2, regardless of pin counts.
        assert_eq!(hg.connectivity_cut(&[0, 0, 1, 2], 3), 2.0);
    }

    #[test]
    fn part_weights_accumulate() {
        let hg = Hypergraph::new(vec![1.0, 2.0, 3.0], vec![], vec![]);
        assert_eq!(hg.part_weights(&[0, 1, 1], 2), vec![1.0, 5.0]);
    }

    #[test]
    fn affinity_builder() {
        // 3 tasks; blocks: 0 touched by {0,1}, 1 touched by {1,2},
        // 2 touched only by {2} (dropped).
        let touches = vec![vec![0], vec![0, 1], vec![1, 2]];
        let hg = Hypergraph::from_affinities(vec![1.0; 3], &touches, 3);
        assert_eq!(hg.nets.len(), 2);
        assert_eq!(hg.nets[0], vec![0, 1]);
        assert_eq!(hg.nets[1], vec![1, 2]);
    }

    #[test]
    fn vertex_nets_incidence() {
        let hg = sample();
        let inc = hg.vertex_nets();
        assert_eq!(inc[2], vec![0, 1]);
        assert_eq!(inc[5], vec![2]);
        assert!(inc[0] == vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_pin_panics() {
        let _ = Hypergraph::new(vec![1.0; 2], vec![vec![0, 5]], vec![1.0]);
    }
}
