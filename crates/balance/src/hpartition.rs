//! Multilevel k-way hypergraph partitioning by recursive bisection.
//!
//! A from-scratch implementation of the classical multilevel scheme
//! (PaToH/hMETIS style), the paper's "computationally expensive"
//! load-balancing baseline:
//!
//! 1. **Coarsening** — heavy-connectivity vertex matching until the
//!    hypergraph is small;
//! 2. **Initial partitioning** — randomized greedy region growth on the
//!    coarsest level, best of several tries;
//! 3. **Uncoarsening + FM refinement** — project the bisection back
//!    through the levels, improving the connectivity cut at each level
//!    with Fiduccia–Mattheyses passes under a balance constraint.
//!
//! k-way partitions come from recursive bisection with proportional
//! target weights, so any `k ≥ 1` is supported.

use crate::hypergraph::Hypergraph;

/// Partitioner configuration.
#[derive(Debug, Clone)]
pub struct HgpConfig {
    /// Allowed part-weight deviation as a fraction of total weight
    /// (per bisection).
    pub epsilon: f64,
    /// RNG seed (fully deterministic given the seed).
    pub seed: u64,
    /// Stop coarsening below this many vertices.
    pub coarsen_until: usize,
    /// FM passes per uncoarsening level.
    pub fm_passes: usize,
    /// Random restarts for the initial partition.
    pub initial_tries: usize,
}

impl Default for HgpConfig {
    fn default() -> Self {
        HgpConfig {
            epsilon: 0.05,
            seed: 0x9a27,
            coarsen_until: 64,
            fm_passes: 3,
            initial_tries: 6,
        }
    }
}

/// Partitions `hg` into `k` parts; returns `parts[v] ∈ 0..k`.
pub fn partition(hg: &Hypergraph, k: usize, cfg: &HgpConfig) -> Vec<u32> {
    assert!(k >= 1, "k must be at least 1");
    let mut parts = vec![0u32; hg.nv()];
    if k == 1 || hg.nv() == 0 {
        return parts;
    }
    let ids: Vec<usize> = (0..hg.nv()).collect();
    recurse(hg, &ids, k, 0, cfg, cfg.seed, &mut parts);
    parts
}

/// Recursively bisects the sub-hypergraph induced by `ids`, writing
/// part labels `base..base+k` into `parts`.
fn recurse(
    hg: &Hypergraph,
    ids: &[usize],
    k: usize,
    base: u32,
    cfg: &HgpConfig,
    seed: u64,
    parts: &mut [u32],
) {
    if k == 1 {
        for &v in ids {
            parts[v] = base;
        }
        return;
    }
    let k0 = k / 2;
    let k1 = k - k0;
    let f = k0 as f64 / k as f64;

    let sub = extract(hg, ids);
    let sides = multilevel_bisect(&sub, f, cfg, seed);

    let left: Vec<usize> = ids
        .iter()
        .enumerate()
        .filter(|(i, _)| sides[*i] == 0)
        .map(|(_, &v)| v)
        .collect();
    let right: Vec<usize> = ids
        .iter()
        .enumerate()
        .filter(|(i, _)| sides[*i] == 1)
        .map(|(_, &v)| v)
        .collect();
    recurse(
        hg,
        &left,
        k0,
        base,
        cfg,
        seed.wrapping_mul(6364136223846793005).wrapping_add(1),
        parts,
    );
    recurse(
        hg,
        &right,
        k1,
        base + k0 as u32,
        cfg,
        seed.wrapping_mul(6364136223846793005).wrapping_add(2),
        parts,
    );
}

/// Induces the sub-hypergraph on `ids` (nets restricted to kept pins).
fn extract(hg: &Hypergraph, ids: &[usize]) -> Hypergraph {
    let mut newid = vec![u32::MAX; hg.nv()];
    for (ni, &v) in ids.iter().enumerate() {
        newid[v] = ni as u32;
    }
    let vwts: Vec<f64> = ids.iter().map(|&v| hg.vwts[v]).collect();
    let mut nets = Vec::new();
    let mut nwts = Vec::new();
    for (net, &w) in hg.nets.iter().zip(&hg.nwts) {
        let pins: Vec<u32> = net
            .iter()
            .filter_map(|&v| {
                let n = newid[v as usize];
                (n != u32::MAX).then_some(n)
            })
            .collect();
        if pins.len() >= 2 {
            nets.push(pins);
            nwts.push(w);
        }
    }
    Hypergraph::new(vwts, nets, nwts)
}

/// One multilevel bisection: returns side (0/1) per vertex, targeting
/// fraction `f` of the total weight on side 0.
fn multilevel_bisect(hg: &Hypergraph, f: f64, cfg: &HgpConfig, seed: u64) -> Vec<u8> {
    // --- Coarsening ---
    struct Level {
        hg: Hypergraph,
        /// fine vertex → coarse vertex of the *next* level.
        map: Vec<u32>,
    }
    let mut levels: Vec<Level> = Vec::new();
    let mut current = hg.clone();
    let mut rng = Rng::new(seed ^ 0xc0a53);
    while current.nv() > cfg.coarsen_until {
        let map = heavy_connectivity_matching(&current, &mut rng);
        let coarse_nv = 1 + map.iter().copied().max().unwrap_or(0) as usize;
        if coarse_nv as f64 > 0.95 * current.nv() as f64 {
            break; // coarsening stalled
        }
        let coarse = coarsen(&current, &map, coarse_nv);
        levels.push(Level { hg: current, map });
        current = coarse;
    }

    // --- Initial partition on the coarsest level ---
    let mut best: Option<(f64, Vec<u8>)> = None;
    for t in 0..cfg.initial_tries.max(1) {
        let mut sides = grow_bisection(&current, f, &mut rng);
        let inc = current.vertex_nets();
        for _ in 0..cfg.fm_passes {
            if !fm_pass(&current, &inc, &mut sides, f, cfg.epsilon, &mut rng) {
                break;
            }
        }
        let cut = bisection_cut(&current, &sides);
        if best.as_ref().is_none_or(|(c, _)| cut < *c) {
            best = Some((cut, sides));
        }
        let _ = t;
    }
    let mut sides = best.expect("at least one initial try").1;

    // --- Uncoarsen + refine ---
    for level in levels.iter().rev() {
        let mut fine_sides = vec![0u8; level.hg.nv()];
        for (v, &c) in level.map.iter().enumerate() {
            fine_sides[v] = sides[c as usize];
        }
        let inc = level.hg.vertex_nets();
        for _ in 0..cfg.fm_passes {
            if !fm_pass(&level.hg, &inc, &mut fine_sides, f, cfg.epsilon, &mut rng) {
                break;
            }
        }
        sides = fine_sides;
    }
    sides
}

/// Heavy-connectivity matching: pairs each vertex with the unmatched
/// neighbour sharing the largest net-weight density. Returns the fine→
/// coarse vertex map.
fn heavy_connectivity_matching(hg: &Hypergraph, rng: &mut Rng) -> Vec<u32> {
    const MAX_NET_FOR_MATCHING: usize = 64;
    let nv = hg.nv();
    let inc = hg.vertex_nets();
    let mut order: Vec<usize> = (0..nv).collect();
    rng.shuffle(&mut order);
    let mut mate = vec![u32::MAX; nv];
    let mut score = vec![0.0f64; nv];
    let mut touched: Vec<usize> = Vec::new();
    let mut coarse = vec![u32::MAX; nv];
    let mut next_coarse = 0u32;

    for &u in &order {
        if mate[u] != u32::MAX {
            continue;
        }
        // Score unmatched neighbours by shared connectivity.
        for &ni in &inc[u] {
            let net = &hg.nets[ni as usize];
            if net.len() > MAX_NET_FOR_MATCHING {
                continue;
            }
            let density = hg.nwts[ni as usize] / (net.len() - 1) as f64;
            for &v in net {
                let v = v as usize;
                if v != u && mate[v] == u32::MAX {
                    if score[v] == 0.0 {
                        touched.push(v);
                    }
                    score[v] += density;
                }
            }
        }
        let mut bestv = None;
        let mut bests = 0.0;
        for &v in &touched {
            if score[v] > bests {
                bests = score[v];
                bestv = Some(v);
            }
        }
        for &v in &touched {
            score[v] = 0.0;
        }
        touched.clear();

        let c = next_coarse;
        next_coarse += 1;
        coarse[u] = c;
        mate[u] = u as u32;
        if let Some(v) = bestv {
            coarse[v] = c;
            mate[v] = v as u32;
        }
    }
    coarse
}

/// Builds the coarse hypergraph for a matching map.
fn coarsen(hg: &Hypergraph, map: &[u32], coarse_nv: usize) -> Hypergraph {
    let mut vwts = vec![0.0; coarse_nv];
    for (v, &c) in map.iter().enumerate() {
        vwts[c as usize] += hg.vwts[v];
    }
    let nets: Vec<Vec<u32>> = hg
        .nets
        .iter()
        .map(|net| net.iter().map(|&v| map[v as usize]).collect())
        .collect();
    Hypergraph::new(vwts, nets, hg.nwts.clone())
}

/// Random greedy region growth targeting `f` of the weight on side 0.
fn grow_bisection(hg: &Hypergraph, f: f64, rng: &mut Rng) -> Vec<u8> {
    let nv = hg.nv();
    if nv == 0 {
        return Vec::new();
    }
    let total: f64 = hg.vwts.iter().sum();
    let target0 = f * total;
    let inc = hg.vertex_nets();
    let mut side = vec![1u8; nv];
    let mut w0 = 0.0;
    let mut queue = std::collections::VecDeque::new();
    let mut enqueued = vec![false; nv];

    while w0 < target0 {
        let u = match queue.pop_front() {
            Some(u) => u,
            None => {
                // Start (or restart) from a random unassigned vertex.
                match (0..nv)
                    .filter(|&v| side[v] == 1 && !enqueued[v])
                    .nth(rng.below(nv))
                {
                    Some(u) => u,
                    None => match (0..nv).find(|&v| side[v] == 1) {
                        Some(u) => u,
                        None => break,
                    },
                }
            }
        };
        if side[u] == 0 {
            continue;
        }
        // Stop before badly overshooting the target.
        if w0 + hg.vwts[u] > target0 + 0.5 * hg.vwts[u] && w0 > 0.0 {
            // Still take it if we're far from the target.
            if w0 >= 0.8 * target0 {
                break;
            }
        }
        side[u] = 0;
        w0 += hg.vwts[u];
        for &ni in &inc[u] {
            for &v in &hg.nets[ni as usize] {
                let v = v as usize;
                if side[v] == 1 && !enqueued[v] {
                    enqueued[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    side
}

/// Weighted cut of a bisection (connectivity cut with k = 2 equals the
/// plain cut-net metric).
fn bisection_cut(hg: &Hypergraph, side: &[u8]) -> f64 {
    let mut cut = 0.0;
    for (net, &w) in hg.nets.iter().zip(&hg.nwts) {
        let s0 = side[net[0] as usize];
        if net.iter().any(|&v| side[v as usize] != s0) {
            cut += w;
        }
    }
    cut
}

/// One FM pass. Returns true if the pass improved the cut.
fn fm_pass(
    hg: &Hypergraph,
    inc: &[Vec<u32>],
    side: &mut [u8],
    f: f64,
    epsilon: f64,
    _rng: &mut Rng,
) -> bool {
    let nv = hg.nv();
    if nv == 0 {
        return false;
    }
    let total: f64 = hg.vwts.iter().sum();
    let target0 = f * total;
    let slack = epsilon * total;

    // Per-net pin counts on side 0 / side 1.
    let mut cnt = vec![[0u32; 2]; hg.nets.len()];
    for (ni, net) in hg.nets.iter().enumerate() {
        for &v in net {
            cnt[ni][side[v as usize] as usize] += 1;
        }
    }
    let gain = |v: usize, side: &[u8], cnt: &[[u32; 2]]| -> f64 {
        let s = side[v] as usize;
        let mut g = 0.0;
        for &ni in &inc[v] {
            let ni = ni as usize;
            let w = hg.nwts[ni];
            if cnt[ni][s] == 1 {
                g += w; // net becomes uncut
            }
            if cnt[ni][1 - s] == 0 {
                g -= w; // net becomes cut
            }
        }
        g
    };

    let mut w0: f64 = (0..nv).filter(|&v| side[v] == 0).map(|v| hg.vwts[v]).sum();
    let mut locked = vec![false; nv];
    // Lazy max-heap of (gain, vertex); stale entries are skipped.
    let mut heap: std::collections::BinaryHeap<HeapItem> = (0..nv)
        .map(|v| HeapItem {
            gain: gain(v, side, &cnt),
            vertex: v as u32,
        })
        .collect();

    let mut applied: Vec<usize> = Vec::new();
    let mut cum = 0.0;
    let mut best_cum = 0.0;
    let mut best_len = 0usize;
    // Tie-break equal-cut prefixes by balance deviation, so FM also
    // serves as the balance-repair step (essential for net-free or
    // already-optimal-cut instances).
    let mut best_dev = (w0 - target0).abs();

    while let Some(HeapItem { gain: g, vertex }) = heap.pop() {
        let v = vertex as usize;
        if locked[v] {
            continue;
        }
        let fresh = gain(v, side, &cnt);
        if (fresh - g).abs() > 1e-12 {
            heap.push(HeapItem {
                gain: fresh,
                vertex,
            });
            continue;
        }
        // Balance feasibility of moving v.
        let wv = hg.vwts[v];
        let new_w0 = if side[v] == 0 { w0 - wv } else { w0 + wv };
        let now_dev = (w0 - target0).abs();
        let new_dev = (new_w0 - target0).abs();
        if new_dev > slack && new_dev >= now_dev {
            // Infeasible and not improving balance: skip (stays locked
            // out of this pass).
            locked[v] = true;
            continue;
        }
        // Apply the move.
        let s = side[v] as usize;
        for &ni in &inc[v] {
            let ni = ni as usize;
            cnt[ni][s] -= 1;
            cnt[ni][1 - s] += 1;
        }
        side[v] = 1 - side[v];
        w0 = new_w0;
        locked[v] = true;
        cum += fresh;
        applied.push(v);
        let dev = (w0 - target0).abs();
        if cum > best_cum + 1e-12 || (cum > best_cum - 1e-12 && dev < best_dev - 1e-12) {
            best_cum = cum.max(best_cum);
            best_dev = dev;
            best_len = applied.len();
        }
        // Refresh neighbour gains (lazy: push updated values).
        for &ni in &inc[v] {
            for &u in &hg.nets[ni as usize] {
                let u = u as usize;
                if !locked[u] {
                    heap.push(HeapItem {
                        gain: gain(u, side, &cnt),
                        vertex: u as u32,
                    });
                }
            }
        }
    }

    // Roll back past the best prefix.
    for &v in applied[best_len..].iter().rev() {
        side[v] = 1 - side[v];
    }
    best_len > 0
}

/// Heap item ordered by gain (max-heap), ties by vertex id.
struct HeapItem {
    gain: f64,
    vertex: u32,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.vertex == other.vertex
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .expect("NaN gain")
            .then(self.vertex.cmp(&other.vertex))
    }
}

/// Deterministic splitmix64-based RNG (no external dependency in the
/// partitioner hot path).
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }

    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.below(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of cliques: `m` groups of `g` vertices; heavy nets inside
    /// groups, light nets linking consecutive groups. The natural
    /// k = m partition cuts only the light links.
    fn ring_of_cliques(m: usize, g: usize) -> Hypergraph {
        let nv = m * g;
        let mut nets = Vec::new();
        let mut nwts = Vec::new();
        for c in 0..m {
            let members: Vec<u32> = (0..g).map(|i| (c * g + i) as u32).collect();
            nets.push(members);
            nwts.push(10.0);
            // Light link to the next group.
            nets.push(vec![(c * g) as u32, (((c + 1) % m) * g) as u32]);
            nwts.push(1.0);
        }
        Hypergraph::new(vec![1.0; nv], nets, nwts)
    }

    #[test]
    fn k1_is_trivial() {
        let hg = ring_of_cliques(2, 4);
        let parts = partition(&hg, 1, &HgpConfig::default());
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn bisection_is_balanced_and_valid() {
        let hg = ring_of_cliques(4, 8);
        let parts = partition(&hg, 2, &HgpConfig::default());
        assert_eq!(parts.len(), 32);
        assert!(parts.iter().all(|&p| p < 2));
        let w = hg.part_weights(&parts, 2);
        assert!((w[0] - w[1]).abs() <= 4.0, "weights {w:?}");
    }

    #[test]
    fn bisection_finds_the_obvious_cut() {
        // Two heavy cliques joined by one light net: the cut should not
        // split a clique.
        let hg = ring_of_cliques(2, 10);
        let parts = partition(&hg, 2, &HgpConfig::default());
        let cut = hg.connectivity_cut(&parts, 2);
        // Optimal cuts only the two inter-clique links (weight 1 each).
        assert!(cut <= 2.0 + 1e-12, "cut {cut} parts {parts:?}");
    }

    #[test]
    fn four_way_respects_structure() {
        let hg = ring_of_cliques(4, 6);
        let parts = partition(&hg, 4, &HgpConfig::default());
        let w = hg.part_weights(&parts, 4);
        let max = w.iter().cloned().fold(0.0, f64::max);
        let mean = w.iter().sum::<f64>() / 4.0;
        assert!(max / mean <= 1.35, "weights {w:?}");
        // Each heavy clique net should be internal to one part.
        let cut = hg.connectivity_cut(&parts, 4);
        assert!(cut <= 8.0, "cut {cut}");
    }

    #[test]
    fn odd_k_supported() {
        let hg = ring_of_cliques(6, 5);
        let parts = partition(&hg, 3, &HgpConfig::default());
        assert!(parts.iter().all(|&p| p < 3));
        let w = hg.part_weights(&parts, 3);
        assert!(w.iter().all(|&x| x > 0.0), "no empty parts expected: {w:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let hg = ring_of_cliques(3, 7);
        let cfg = HgpConfig::default();
        assert_eq!(partition(&hg, 4, &cfg), partition(&hg, 4, &cfg));
    }

    #[test]
    fn handles_netless_hypergraph() {
        let hg = Hypergraph::new(vec![1.0; 10], vec![], vec![]);
        let parts = partition(&hg, 2, &HgpConfig::default());
        let w = hg.part_weights(&parts, 2);
        assert!((w[0] - w[1]).abs() <= 2.0, "weights {w:?}");
    }

    #[test]
    fn empty_hypergraph() {
        let hg = Hypergraph::new(vec![], vec![], vec![]);
        assert!(partition(&hg, 4, &HgpConfig::default()).is_empty());
    }

    #[test]
    fn weighted_vertices_balanced_by_weight() {
        // One heavy vertex + many light ones.
        let mut vw = vec![1.0; 20];
        vw[0] = 20.0;
        let hg = Hypergraph::new(vw, vec![], vec![]);
        let parts = partition(&hg, 2, &HgpConfig::default());
        let w = hg.part_weights(&parts, 2);
        // Heavy vertex alone ≈ the other side's 20 light ones.
        assert!((w[0] - w[1]).abs() <= 4.0, "weights {w:?}");
    }

    #[test]
    fn larger_instance_under_coarsening() {
        // Big enough to exercise multiple coarsening levels.
        let hg = ring_of_cliques(32, 16); // 512 vertices
        let parts = partition(&hg, 8, &HgpConfig::default());
        let w = hg.part_weights(&parts, 8);
        let mean = w.iter().sum::<f64>() / 8.0;
        let max = w.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / mean < 1.4,
            "imbalance {:.3}, weights {w:?}",
            max / mean
        );
        // Cut should be far below "everything cut".
        let worst: f64 = hg.nwts.iter().sum();
        assert!(hg.connectivity_cut(&parts, 8) < 0.3 * worst);
    }
}
