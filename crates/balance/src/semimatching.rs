//! Semi-matching load balancing.
//!
//! A *semi-matching* of a bipartite graph (tasks × workers, edges =
//! allowed placements) is an edge subset giving every task exactly one
//! worker — the natural formalization of locality-constrained task
//! assignment (Harvey, Ladner, Lovász & Tamir, *Semi-matchings for
//! bipartite graphs and load balancing*, J. Algorithms 2006). An
//! *optimal* semi-matching minimizes Σ load² (equivalently, it is
//! lexicographically best in sorted load order, so it also minimizes the
//! makespan among semi-matchings).
//!
//! Two algorithms are provided:
//!
//! * [`optimal_semi_matching_unit`] — exact for unit-weight tasks via
//!   cost-reducing alternating paths (the `ASM1` scheme);
//! * [`semi_matching`] — the study's balancer for *weighted* tasks:
//!   weight-ordered greedy seeding followed by potential-reducing move
//!   and swap refinement along candidate edges. This is the "cheap but
//!   comparable to hypergraph partitioning" technique of the paper.

use crate::problem::{Assignment, Problem};

/// Task→candidate-worker adjacency. `None` entries are not allowed;
/// every task needs at least one candidate.
pub type Adjacency = Vec<Vec<u32>>;

/// Builds the unrestricted adjacency (every task may go anywhere).
pub fn full_adjacency(ntasks: usize, workers: usize) -> Adjacency {
    let all: Vec<u32> = (0..workers as u32).collect();
    vec![all; ntasks]
}

/// Exact optimal semi-matching for **unit-weight** tasks.
///
/// Starts from a greedy assignment and repeatedly applies cost-reducing
/// paths: a chain of machines `m₀ → m₁ → … → m_k` (each hop re-assigns
/// one task from its current machine to the next machine in the chain)
/// strictly improves Σ load² iff `load(m_k) + 1 < load(m₀)`. When no
/// such path exists the assignment is optimal (Harvey et al., Thm 3.1).
pub fn optimal_semi_matching_unit(adj: &Adjacency, workers: usize) -> Assignment {
    let n = adj.len();
    let mut assignment = vec![0u32; n];
    let mut loads = vec![0u32; workers];
    // Greedy seed: least-loaded candidate.
    for (t, cands) in adj.iter().enumerate() {
        assert!(!cands.is_empty(), "task {t} has no candidate worker");
        let &w = cands
            .iter()
            .min_by_key(|&&w| (loads[w as usize], w))
            .expect("non-empty candidates");
        assignment[t] = w;
        loads[w as usize] += 1;
    }
    // Cost-reducing path refinement.
    loop {
        // tasks_on[w] = tasks currently assigned to w.
        let mut tasks_on: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (t, &w) in assignment.iter().enumerate() {
            tasks_on[w as usize].push(t);
        }
        let Some(path) = find_reducing_path(adj, &assignment, &loads, &tasks_on) else {
            break;
        };
        // Apply: shift one task per hop.
        for &(task, to) in &path {
            let from = assignment[task] as usize;
            loads[from] -= 1;
            loads[to as usize] += 1;
            assignment[task] = to;
        }
    }
    assignment
}

/// BFS for a cost-reducing path from any maximally-loaded machine.
/// Returns the hops as `(task, new_worker)` in application order.
fn find_reducing_path(
    adj: &Adjacency,
    assignment: &[u32],
    loads: &[u32],
    tasks_on: &[Vec<usize>],
) -> Option<Vec<(usize, u32)>> {
    let workers = loads.len();
    let max_load = *loads.iter().max()?;
    if max_load <= 1 {
        return None;
    }
    // BFS from every machine at max load simultaneously.
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; workers]; // (prev machine, task moved)
    let mut visited = vec![false; workers];
    let mut queue = std::collections::VecDeque::new();
    for (m, &l) in loads.iter().enumerate() {
        if l == max_load {
            visited[m] = true;
            queue.push_back(m);
        }
    }
    while let Some(m) = queue.pop_front() {
        for &t in &tasks_on[m] {
            debug_assert_eq!(assignment[t] as usize, m);
            for &c in &adj[t] {
                let c = c as usize;
                if visited[c] {
                    continue;
                }
                visited[c] = true;
                parent[c] = Some((m, t));
                if loads[c] + 1 < max_load {
                    // Reconstruct path back to a root.
                    let mut hops = Vec::new();
                    let mut cur = c;
                    while let Some((prev, task)) = parent[cur] {
                        hops.push((task, cur as u32));
                        cur = prev;
                    }
                    hops.reverse();
                    return Some(hops);
                }
                queue.push_back(c);
            }
        }
    }
    None
}

/// Configuration for the weighted semi-matching balancer.
#[derive(Debug, Clone)]
pub struct SemiMatchConfig {
    /// Maximum refinement rounds (each round is one move pass plus one
    /// swap pass; the potential strictly decreases, so this is a cap,
    /// not a tuning knob).
    pub max_rounds: usize,
}

impl Default for SemiMatchConfig {
    fn default() -> Self {
        SemiMatchConfig { max_rounds: 32 }
    }
}

/// Weighted semi-matching: greedy weight-ordered seeding plus
/// Σ load²-reducing move/swap refinement restricted to candidate edges.
pub fn semi_matching(problem: &Problem, adj: &Adjacency, config: &SemiMatchConfig) -> Assignment {
    let n = problem.ntasks();
    assert_eq!(adj.len(), n, "adjacency length mismatch");
    let w = &problem.weights;

    // Greedy seed in decreasing weight order (LPT restricted to
    // candidates).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| w[b].partial_cmp(&w[a]).expect("NaN weight").then(a.cmp(&b)));
    let mut assignment = vec![0u32; n];
    let mut loads = vec![0.0f64; problem.workers];
    for t in order {
        assert!(!adj[t].is_empty(), "task {t} has no candidate worker");
        let &best = adj[t]
            .iter()
            .min_by(|&&a, &&b| {
                loads[a as usize]
                    .partial_cmp(&loads[b as usize])
                    .expect("NaN")
                    .then(a.cmp(&b))
            })
            .expect("non-empty candidates");
        assignment[t] = best;
        loads[best as usize] += w[t];
    }

    // Refinement: single-task moves, then top-vs-bottom swaps.
    for _ in 0..config.max_rounds {
        let mut improved = false;

        // Move pass: relocate a task if it strictly reduces Σ load².
        // Δ(Σload²) for moving t: (la−wt)²+(lb+wt)² − la² − lb²
        //                       = 2wt(wt + lb − la); improves iff
        // lb + wt < la.
        for t in 0..n {
            let from = assignment[t] as usize;
            let wt = w[t];
            if wt == 0.0 {
                continue;
            }
            let mut best: Option<usize> = None;
            for &c in &adj[t] {
                let c = c as usize;
                if c == from {
                    continue;
                }
                if loads[c] + wt < loads[from] - 1e-12 && best.is_none_or(|b| loads[c] < loads[b]) {
                    best = Some(c);
                }
            }
            if let Some(b) = best {
                loads[from] -= wt;
                loads[b] += wt;
                assignment[t] = b as u32;
                improved = true;
            }
        }

        // Swap pass between the most- and least-loaded workers: exchange
        // tasks t ∈ hi, u ∈ lo when it reduces the potential, i.e. when
        // 0 < (w_t − w_u) < load(hi) − load(lo) and the candidate sets
        // permit the exchange.
        let (hi, lo) = extremes(&loads);
        if hi != lo {
            let gap = loads[hi] - loads[lo];
            let his: Vec<usize> = (0..n).filter(|&t| assignment[t] as usize == hi).collect();
            let los: Vec<usize> = (0..n).filter(|&t| assignment[t] as usize == lo).collect();
            'swap: for &t in &his {
                for &u in &los {
                    let d = w[t] - w[u];
                    if d > 1e-12
                        && d < gap - 1e-12
                        && adj[t].contains(&(lo as u32))
                        && adj[u].contains(&(hi as u32))
                    {
                        assignment[t] = lo as u32;
                        assignment[u] = hi as u32;
                        loads[hi] += w[u] - w[t];
                        loads[lo] += w[t] - w[u];
                        improved = true;
                        break 'swap;
                    }
                }
            }
        }

        if !improved {
            break;
        }
    }
    assignment
}

/// Indices of the maximum and minimum loads (deterministic tie-break).
fn extremes(loads: &[f64]) -> (usize, usize) {
    let mut hi = 0;
    let mut lo = 0;
    for (i, &l) in loads.iter().enumerate() {
        if l > loads[hi] {
            hi = i;
        }
        if l < loads[lo] {
            lo = i;
        }
    }
    (hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::is_valid;

    fn sq_potential(loads: &[f64]) -> f64 {
        loads.iter().map(|l| l * l).sum()
    }

    /// Brute-force optimal Σ load² over all assignments (tiny inputs).
    fn brute_force_unit(adj: &Adjacency, workers: usize) -> f64 {
        fn rec(adj: &Adjacency, t: usize, loads: &mut Vec<u32>, best: &mut f64) {
            if t == adj.len() {
                let p: f64 = loads.iter().map(|&l| (l as f64) * (l as f64)).sum();
                if p < *best {
                    *best = p;
                }
                return;
            }
            for &c in &adj[t] {
                loads[c as usize] += 1;
                rec(adj, t + 1, loads, best);
                loads[c as usize] -= 1;
            }
        }
        let mut loads = vec![0u32; workers];
        let mut best = f64::INFINITY;
        rec(adj, 0, &mut loads, &mut best);
        best
    }

    #[test]
    fn unit_optimal_matches_brute_force() {
        // Deterministic pseudo-random restricted adjacencies.
        for seed in 0..30u64 {
            let workers = 3;
            let n = 7;
            let adj: Adjacency = (0..n)
                .map(|t| {
                    let mut c: Vec<u32> = (0..workers as u32)
                        .filter(|&w| {
                            (seed
                                .wrapping_mul(2654435761)
                                .wrapping_add((t as u64) * 31 + w as u64))
                                % 3
                                != 0
                        })
                        .collect();
                    if c.is_empty() {
                        c.push((seed % workers as u64) as u32);
                    }
                    c
                })
                .collect();
            let a = optimal_semi_matching_unit(&adj, workers);
            assert!(is_valid(&a, n, workers));
            // Candidates respected.
            for (t, &w) in a.iter().enumerate() {
                assert!(adj[t].contains(&w), "seed {seed} task {t}");
            }
            let mut loads = vec![0.0; workers];
            for &w in &a {
                loads[w as usize] += 1.0;
            }
            let opt = brute_force_unit(&adj, workers);
            assert_eq!(sq_potential(&loads), opt, "seed {seed}: {loads:?}");
        }
    }

    #[test]
    fn unit_unrestricted_is_perfectly_balanced() {
        let adj = full_adjacency(10, 4);
        let a = optimal_semi_matching_unit(&adj, 4);
        let mut loads = vec![0u32; 4];
        for &w in &a {
            loads[w as usize] += 1;
        }
        loads.sort();
        assert_eq!(loads, vec![2, 2, 3, 3]);
    }

    #[test]
    fn unit_path_refinement_needed_case() {
        // Greedy alone can be suboptimal with restricted candidates:
        // tasks 0,1 may only use worker 0; task 2 can use 0 or 1; task 3
        // only worker 1. Greedy in order 0..: t0→w0, t1→w0, t2→w1,
        // t3→w1 = loads (2,2) already optimal. Make an instance where a
        // 2-hop path is required: t0,t1,t2 → {0}, t3 → {0,1}, t4 → {1,2}.
        let adj: Adjacency = vec![vec![0], vec![0], vec![0], vec![0, 1], vec![1, 2]];
        let a = optimal_semi_matching_unit(&adj, 3);
        let mut loads = vec![0u32; 3];
        for &w in &a {
            loads[w as usize] += 1;
        }
        assert_eq!(loads, vec![3, 1, 1], "optimal is (3,1,1): {a:?}");
    }

    #[test]
    fn weighted_valid_and_candidate_respecting() {
        let weights: Vec<f64> = (0..40).map(|i| ((i * 13 + 7) % 23) as f64 + 1.0).collect();
        let p = Problem::new(weights, 5);
        let adj: Adjacency = (0..40)
            .map(|t| vec![(t % 5) as u32, ((t + 2) % 5) as u32, ((t + 3) % 5) as u32])
            .collect();
        let a = semi_matching(&p, &adj, &SemiMatchConfig::default());
        assert!(is_valid(&a, 40, 5));
        for (t, &w) in a.iter().enumerate() {
            assert!(adj[t].contains(&w));
        }
    }

    #[test]
    fn weighted_unrestricted_close_to_lower_bound() {
        let weights: Vec<f64> = (0..200).map(|i| 1.0 + ((i * 37) % 97) as f64).collect();
        let p = Problem::new(weights, 8);
        let adj = full_adjacency(200, 8);
        let a = semi_matching(&p, &adj, &SemiMatchConfig::default());
        let ms = p.makespan(&a);
        assert!(
            ms <= 1.1 * p.lower_bound(),
            "makespan {ms} vs LB {}",
            p.lower_bound()
        );
    }

    #[test]
    fn weighted_at_least_as_good_as_greedy_seed() {
        // The refinement must never worsen the seed (monotone potential).
        let weights = vec![9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 1.0];
        let p = Problem::new(weights, 3);
        let adj = full_adjacency(10, 3);
        let seeded = crate::lpt::lpt(&p);
        let refined = semi_matching(&p, &adj, &SemiMatchConfig::default());
        assert!(p.makespan(&refined) <= p.makespan(&seeded) + 1e-12);
    }

    #[test]
    fn deterministic() {
        let p = Problem::new(vec![3.0, 1.0, 4.0, 1.0, 5.0], 2);
        let adj = full_adjacency(5, 2);
        let c = SemiMatchConfig::default();
        assert_eq!(semi_matching(&p, &adj, &c), semi_matching(&p, &adj, &c));
    }

    #[test]
    #[should_panic(expected = "no candidate worker")]
    fn empty_candidates_panic() {
        let p = Problem::new(vec![1.0], 2);
        let adj: Adjacency = vec![vec![]];
        let _ = semi_matching(&p, &adj, &SemiMatchConfig::default());
    }

    #[test]
    fn swap_pass_fixes_greedy_trap() {
        // Weights where greedy LPT is stuck but a swap helps:
        // tasks 3,3,2,2,2 on 2 workers; LPT: w0={3,2,2}=7? LPT gives
        // 3→w0, 3→w1, 2→w0, 2→w1, 2→w0 → (7,5). Optimal is (6,6):
        // {3,3} vs {2,2,2}. A single move cannot fix it; the t=3/u=2
        // swap can: moving 3 from w0 to w1 and 2 back reduces gap from
        // 2 to 0.
        let p = Problem::new(vec![3.0, 3.0, 2.0, 2.0, 2.0], 2);
        let adj = full_adjacency(5, 2);
        let a = semi_matching(&p, &adj, &SemiMatchConfig::default());
        assert_eq!(p.makespan(&a), 6.0, "assignment {a:?}");
    }
}
