//! Greedy Longest-Processing-Time (LPT) list scheduling.
//!
//! The classical baseline: sort tasks by decreasing weight and assign
//! each to the currently least-loaded worker. Guarantees makespan
//! ≤ (4/3 − 1/(3p))·OPT and runs in `O(n log n + n log p)` — the cheap
//! end of the cost/quality spectrum against which semi-matching and
//! hypergraph partitioning are compared.

use crate::problem::{Assignment, Problem};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ordered-float wrapper so worker loads can live in a heap.
#[derive(PartialEq)]
struct Load(f64, u32);

impl Eq for Load {}

impl PartialOrd for Load {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Load {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: by load, then worker id for determinism.
        self.0
            .partial_cmp(&other.0)
            .expect("NaN load")
            .then(self.1.cmp(&other.1))
    }
}

/// Computes an LPT assignment.
pub fn lpt(problem: &Problem) -> Assignment {
    let n = problem.ntasks();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        problem.weights[b]
            .partial_cmp(&problem.weights[a])
            .expect("NaN weight")
            .then(a.cmp(&b))
    });

    let mut heap: BinaryHeap<Reverse<Load>> = (0..problem.workers as u32)
        .map(|w| Reverse(Load(0.0, w)))
        .collect();
    let mut assignment = vec![0u32; n];
    for t in order {
        let Reverse(Load(load, w)) = heap.pop().expect("non-empty heap");
        assignment[t] = w;
        heap.push(Reverse(Load(load + problem.weights[t], w)));
    }
    assignment
}

/// Plain list scheduling in *given* task order (no sort) — equivalent to
/// what an online shared-counter scheduler achieves with perfect
/// information, used as an ablation baseline.
pub fn list_schedule(problem: &Problem) -> Assignment {
    let mut loads = vec![0.0f64; problem.workers];
    let mut assignment = vec![0u32; problem.ntasks()];
    for (t, &w) in problem.weights.iter().enumerate() {
        let (best, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN").then(a.0.cmp(&b.0)))
            .expect("workers > 0");
        assignment[t] = best as u32;
        loads[best] += w;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::is_valid;

    #[test]
    fn classic_lpt_trap() {
        // LPT lands on (7,5) here; the optimum (6,6) needs a swap —
        // which is exactly what semi-matching refinement adds on top.
        let p = Problem::new(vec![3.0, 3.0, 2.0, 2.0, 2.0], 2);
        let a = lpt(&p);
        assert!(is_valid(&a, 5, 2));
        assert_eq!(p.makespan(&a), 7.0);
    }

    #[test]
    fn perfect_split_found_when_greedy_suffices() {
        let p = Problem::new(vec![4.0, 3.0, 3.0, 2.0], 2);
        let a = lpt(&p);
        assert_eq!(p.makespan(&a), 6.0); // {4,2} vs {3,3}
    }

    #[test]
    fn single_worker_gets_everything() {
        let p = Problem::new(vec![1.0, 2.0, 3.0], 1);
        let a = lpt(&p);
        assert!(a.iter().all(|&w| w == 0));
        assert_eq!(p.makespan(&a), 6.0);
    }

    #[test]
    fn respects_two_times_lower_bound() {
        // List scheduling guarantee: C ≤ LB + max ≤ 2·LB.
        for seed in 0..20u64 {
            let weights: Vec<f64> = (0..50)
                .map(|i| (((seed.wrapping_mul(31) + i) % 97) as f64 + 1.0).powi(2))
                .collect();
            let p = Problem::new(weights, 7);
            let a = lpt(&p);
            assert!(
                p.makespan(&a) <= 2.0 * p.lower_bound() + 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn lpt_beats_or_matches_arrival_order_on_adversarial_input() {
        // Classic adversarial case for plain list scheduling.
        let weights = vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 3.0];
        let p = Problem::new(weights, 3);
        let a_lpt = lpt(&p);
        let a_ls = list_schedule(&p);
        assert!(p.makespan(&a_lpt) <= p.makespan(&a_ls) + 1e-12);
    }

    #[test]
    fn deterministic() {
        let p = Problem::new(vec![5.0, 5.0, 5.0, 1.0], 2);
        assert_eq!(lpt(&p), lpt(&p));
    }

    #[test]
    fn zero_weight_tasks_allowed() {
        let p = Problem::new(vec![0.0, 0.0, 1.0], 2);
        let a = lpt(&p);
        assert!(is_valid(&a, 3, 2));
        assert_eq!(p.makespan(&a), 1.0);
    }

    #[test]
    fn empty_task_list() {
        let p = Problem::new(vec![], 3);
        assert!(lpt(&p).is_empty());
        assert!(list_schedule(&p).is_empty());
    }
}
