//! Persistence-based (inspector–executor) rebalancing.
//!
//! Iterative applications — SCF is one — execute the *same* task set
//! every iteration, so costs measured in iteration `k` predict iteration
//! `k+1` almost perfectly. The persistence balancer exploits this: keep
//! the previous assignment as the starting point (tasks are "sticky" for
//! locality) and migrate just enough weight from overloaded to
//! underloaded workers to reach a target imbalance.
//!
//! This reproduces the persistence-based load balancers the PNNL line of
//! work pairs with Global Arrays runtimes.

use crate::problem::{Assignment, Problem};

/// Persistence rebalancer configuration.
#[derive(Debug, Clone)]
pub struct PersistenceConfig {
    /// Stop migrating once `max load ≤ target_imbalance · mean load`.
    pub target_imbalance: f64,
    /// Hard cap on migrated tasks per rebalance (bounds migration cost).
    pub max_moves: usize,
}

impl Default for PersistenceConfig {
    fn default() -> Self {
        PersistenceConfig {
            target_imbalance: 1.05,
            max_moves: usize::MAX,
        }
    }
}

/// Rebalances `previous` using measured `problem.weights`.
///
/// Greedy donor→acceptor migration: repeatedly take the most-loaded
/// worker and move its best-fitting task (the largest task that does not
/// push the least-loaded worker above the mean) to the least-loaded
/// worker. Stops at the imbalance target, the move cap, or when no move
/// improves the makespan.
pub fn rebalance(problem: &Problem, previous: &[u32], config: &PersistenceConfig) -> Assignment {
    assert_eq!(
        previous.len(),
        problem.ntasks(),
        "assignment length mismatch"
    );
    let mut assignment = previous.to_vec();
    let mut loads = problem.loads(&assignment);
    let total: f64 = loads.iter().sum();
    if total <= 0.0 {
        return assignment;
    }
    let mean = total / problem.workers as f64;

    // tasks_by_worker, each sorted by ascending weight for binary search.
    let mut tasks_of: Vec<Vec<usize>> = vec![Vec::new(); problem.workers];
    for (t, &w) in assignment.iter().enumerate() {
        tasks_of[w as usize].push(t);
    }
    for list in &mut tasks_of {
        list.sort_by(|&a, &b| {
            problem.weights[a]
                .partial_cmp(&problem.weights[b])
                .expect("NaN weight")
        });
    }

    let mut moves = 0;
    while moves < config.max_moves {
        let (hi, lo) = extremes(&loads);
        if loads[hi] <= config.target_imbalance * mean || hi == lo {
            break;
        }
        // Largest task on `hi` that still helps: moving t helps the
        // makespan iff load(lo) + w_t < load(hi).
        let gap = loads[hi] - loads[lo];
        let candidates = &mut tasks_of[hi];
        // Binary search for the largest weight strictly below `gap`.
        let mut chosen: Option<usize> = None;
        for (pos, &t) in candidates.iter().enumerate().rev() {
            if problem.weights[t] < gap - 1e-12 && problem.weights[t] > 0.0 {
                chosen = Some(pos);
                break;
            }
        }
        let Some(pos) = chosen else { break };
        let t = candidates.remove(pos);
        let w = problem.weights[t];
        assignment[t] = lo as u32;
        loads[hi] -= w;
        loads[lo] += w;
        // Keep the acceptor's list sorted.
        let ins = tasks_of[lo]
            .binary_search_by(|&x| problem.weights[x].partial_cmp(&w).expect("NaN weight"))
            .unwrap_or_else(|e| e);
        tasks_of[lo].insert(ins, t);
        moves += 1;
    }
    assignment
}

fn extremes(loads: &[f64]) -> (usize, usize) {
    let mut hi = 0;
    let mut lo = 0;
    for (i, &l) in loads.iter().enumerate() {
        if l > loads[hi] {
            hi = i;
        }
        if l < loads[lo] {
            lo = i;
        }
    }
    (hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::movement;

    #[test]
    fn balanced_input_is_untouched() {
        let p = Problem::new(vec![1.0; 8], 4);
        let prev = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let out = rebalance(&p, &prev, &PersistenceConfig::default());
        assert_eq!(out, prev);
    }

    #[test]
    fn skewed_input_gets_fixed() {
        // All tasks on worker 0.
        let p = Problem::new(vec![1.0; 12], 3);
        let prev = vec![0; 12];
        let out = rebalance(&p, &prev, &PersistenceConfig::default());
        let loads = p.loads(&out);
        assert!(p.imbalance(&out) <= 1.05, "loads {loads:?}");
    }

    #[test]
    fn movement_is_bounded_by_cap() {
        let p = Problem::new(vec![1.0; 100], 4);
        let prev = vec![0; 100];
        let cfg = PersistenceConfig {
            max_moves: 10,
            ..Default::default()
        };
        let out = rebalance(&p, &prev, &cfg);
        assert!(movement(&prev, &out) <= 10);
    }

    #[test]
    fn minimal_migration_for_small_skew() {
        // Worker 0 has one extra unit task; a single move fixes it.
        let p = Problem::new(vec![1.0; 9], 2);
        let prev = vec![0, 0, 0, 0, 0, 1, 1, 1, 1];
        let out = rebalance(
            &p,
            &prev,
            &PersistenceConfig {
                target_imbalance: 1.2,
                ..Default::default()
            },
        );
        assert!(movement(&prev, &out) <= 1);
    }

    #[test]
    fn never_worsens_makespan() {
        for seed in 0..10u64 {
            let weights: Vec<f64> = (0..40)
                .map(|i| 1.0 + ((seed * 31 + i * 7) % 13) as f64)
                .collect();
            let p = Problem::new(weights, 5);
            let prev: Vec<u32> = (0..40).map(|i| ((seed as usize + i) % 5) as u32).collect();
            let before = p.makespan(&prev);
            let out = rebalance(&p, &prev, &PersistenceConfig::default());
            assert!(p.makespan(&out) <= before + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn zero_total_weight_is_noop() {
        let p = Problem::new(vec![0.0; 4], 2);
        let prev = vec![0, 0, 0, 0];
        assert_eq!(rebalance(&p, &prev, &PersistenceConfig::default()), prev);
    }

    #[test]
    fn giant_task_cannot_be_fixed() {
        // One task dominates; no migration helps, so nothing moves much.
        let p = Problem::new(vec![100.0, 1.0, 1.0], 2);
        let prev = vec![0, 0, 1];
        let out = rebalance(&p, &prev, &PersistenceConfig::default());
        // Task 0 stays (moving it to the other worker would not reduce
        // the max beyond what the small task movements achieve).
        let loads = p.loads(&out);
        assert!(loads.iter().cloned().fold(0.0, f64::max) >= 100.0);
    }
}
