//! The load-balancing problem model and assignment metrics.
//!
//! A *balancing problem* is a set of weighted tasks to be mapped onto
//! `p` workers; an [`Assignment`] maps each task to one worker. Some
//! balancers also use task→worker *candidate* restrictions (locality:
//! the workers owning a task's data) and task→data affinities (for the
//! hypergraph model).

/// A task-to-worker mapping (`assignment[task] = worker`).
pub type Assignment = Vec<u32>;

/// A balancing problem instance.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Per-task cost estimates (non-negative).
    pub weights: Vec<f64>,
    /// Number of workers.
    pub workers: usize,
}

impl Problem {
    /// Creates a problem; panics on zero workers or negative weights.
    pub fn new(weights: Vec<f64>, workers: usize) -> Problem {
        assert!(workers > 0, "need at least one worker");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        Problem { weights, workers }
    }

    /// Number of tasks.
    pub fn ntasks(&self) -> usize {
        self.weights.len()
    }

    /// Per-worker load of an assignment.
    pub fn loads(&self, assignment: &[u32]) -> Vec<f64> {
        assert_eq!(
            assignment.len(),
            self.ntasks(),
            "assignment length mismatch"
        );
        let mut loads = vec![0.0; self.workers];
        for (t, &w) in assignment.iter().enumerate() {
            assert!((w as usize) < self.workers, "worker out of range");
            loads[w as usize] += self.weights[t];
        }
        loads
    }

    /// Makespan (maximum worker load).
    pub fn makespan(&self, assignment: &[u32]) -> f64 {
        self.loads(assignment).into_iter().fold(0.0, f64::max)
    }

    /// Load imbalance `max/mean` (1.0 = perfect).
    pub fn imbalance(&self, assignment: &[u32]) -> f64 {
        let loads = self.loads(assignment);
        let total: f64 = loads.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let mean = total / self.workers as f64;
        loads.into_iter().fold(0.0, f64::max) / mean
    }

    /// Theoretical makespan lower bound `max(total/p, max weight)`.
    pub fn lower_bound(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        let maxw = self.weights.iter().cloned().fold(0.0, f64::max);
        (total / self.workers as f64).max(maxw)
    }
}

/// Number of tasks whose owner differs between two assignments — the
/// migration cost a persistence-based balancer tries to keep low.
pub fn movement(a: &[u32], b: &[u32]) -> usize {
    assert_eq!(a.len(), b.len(), "assignment length mismatch");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Validates an assignment shape (used by proptests and debug builds).
pub fn is_valid(assignment: &[u32], ntasks: usize, workers: usize) -> bool {
    assignment.len() == ntasks && assignment.iter().all(|&w| (w as usize) < workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_makespan() {
        let p = Problem::new(vec![3.0, 1.0, 2.0, 2.0], 2);
        let a = vec![0, 1, 0, 1];
        assert_eq!(p.loads(&a), vec![5.0, 3.0]);
        assert_eq!(p.makespan(&a), 5.0);
        assert!((p.imbalance(&a) - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_cases() {
        let p = Problem::new(vec![10.0, 1.0, 1.0], 3);
        assert_eq!(p.lower_bound(), 10.0);
        let q = Problem::new(vec![2.0; 6], 3);
        assert_eq!(q.lower_bound(), 4.0);
    }

    #[test]
    fn movement_counts_differences() {
        assert_eq!(movement(&[0, 1, 2], &[0, 1, 2]), 0);
        assert_eq!(movement(&[0, 1, 2], &[0, 2, 1]), 2);
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(vec![], 4);
        assert_eq!(p.makespan(&[]), 0.0);
        assert_eq!(p.imbalance(&[]), 1.0);
        assert_eq!(p.lower_bound(), 0.0);
    }

    #[test]
    #[should_panic(expected = "worker out of range")]
    fn out_of_range_worker_panics() {
        let p = Problem::new(vec![1.0], 2);
        let _ = p.loads(&[7]);
    }

    #[test]
    fn validity_check() {
        assert!(is_valid(&[0, 1], 2, 2));
        assert!(!is_valid(&[0, 2], 2, 2));
        assert!(!is_valid(&[0], 2, 2));
    }
}
