//! # emx-balance — load balancing for the execution-model study
//!
//! The paper compares three static cost-model balancers and one
//! iterative rebalancer; all four live here, fully from scratch:
//!
//! * [`lpt`] — greedy Longest-Processing-Time list scheduling (cheap
//!   baseline);
//! * [`semimatching`] — the paper's *novel* technique: optimal
//!   semi-matching for unit tasks plus a weighted variant with
//!   move/swap refinement over the task×worker bipartite graph;
//! * [`hypergraph`] + [`hpartition`] — a multilevel hypergraph
//!   partitioner (heavy-connectivity coarsening, greedy growth, FM
//!   refinement, connectivity-λ−1 metric) — the *expensive* baseline
//!   with the best communication behaviour;
//! * [`persistence`] — inspector–executor sticky rebalancing from
//!   measured per-iteration costs.
//!
//! [`problem`] holds the shared task/assignment model and metrics.
//!
//! ## Example
//!
//! ```
//! use emx_balance::prelude::*;
//!
//! let p = Problem::new(vec![5.0, 4.0, 3.0, 3.0, 3.0], 2);
//! let adj = full_adjacency(5, 2);
//! let a = semi_matching(&p, &adj, &SemiMatchConfig::default());
//! assert_eq!(p.makespan(&a), 9.0); // {5,4} vs {3,3,3}
//! ```

#![warn(missing_docs)]

pub mod hpartition;
pub mod hypergraph;
pub mod kk;
pub mod lpt;
pub mod persistence;
pub mod problem;
pub mod semimatching;

/// Common imports.
pub mod prelude {
    pub use crate::hpartition::{partition, HgpConfig};
    pub use crate::hypergraph::Hypergraph;
    pub use crate::kk::karmarkar_karp;
    pub use crate::lpt::{list_schedule, lpt};
    pub use crate::persistence::{rebalance, PersistenceConfig};
    pub use crate::problem::{is_valid, movement, Assignment, Problem};
    pub use crate::semimatching::{
        full_adjacency, optimal_semi_matching_unit, semi_matching, Adjacency, SemiMatchConfig,
    };
}
