//! Mutation self-test (PR-4 style): seeds known-bad source and
//! manifest mutants into a scratch mirror of the workspace and fails
//! on any escape. Two mutants are the literal review-caught bugs this
//! pass exists to catch mechanically: the PR-6 fence-less seqlock
//! writer and a Relaxed-weakened PR-7 done-protocol counter.

use emx_analyze::report::ViolationKind;
use emx_srclint::selftest::{builtin_mutants, run_mutants};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn no_mutant_escapes() {
    let work = std::env::temp_dir().join(format!("emx-srclint-mutants-{}", std::process::id()));
    let failures = run_mutants(&repo_root(), &work).expect("self-test harness");
    let _ = std::fs::remove_dir_all(&work);
    assert!(
        failures.is_empty(),
        "mutation self-test failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn the_two_review_caught_bugs_are_seeded() {
    let mutants = builtin_mutants();
    let pr6 = mutants
        .iter()
        .find(|m| m.name == "pr6-fenceless-seqlock-writer")
        .expect("PR-6 mutant present");
    assert_eq!(pr6.expect, ViolationKind::MissingFence);
    assert_eq!(pr6.file, "crates/obs/src/ring.rs");
    let pr7 = mutants
        .iter()
        .find(|m| m.name == "pr7-relaxed-done-counter")
        .expect("PR-7 mutant present");
    assert_eq!(pr7.expect, ViolationKind::ProtocolMismatch);
    assert_eq!(pr7.file, "crates/spec/src/scheduler.rs");
}
