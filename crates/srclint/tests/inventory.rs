//! Inventory-completeness gate: the extractor must see the whole
//! concurrency surface, not a convenient subset. The counts below are
//! floors, asserted against the real workspace source — if a
//! refactor moves atomic sites somewhere the scanner cannot see, this
//! fails before the protocol checks can silently pass on a partial
//! model.

use emx_srclint::extract::scan_workspace;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn inventory_covers_the_whole_concurrency_surface() {
    let inv = scan_workspace(&repo_root());

    // ISSUE 9 acceptance floor: all atomic sites in
    // runtime/obs/spec/distsim are in the inventory, ≥ 90 total.
    assert!(
        inv.sites.len() >= 90,
        "expected ≥ 90 atomic sites workspace-wide, found {}",
        inv.sites.len()
    );

    // Every production file with atomics must be represented.
    let production_files = [
        "crates/runtime/src/pool.rs",
        "crates/runtime/src/faults.rs",
        "crates/obs/src/ring.rs",
        "crates/obs/src/metrics.rs",
        "crates/spec/src/scheduler.rs",
        "crates/distsim/src/ga.rs",
        "crates/distsim/src/world.rs",
        "crates/distsim/src/nxtval.rs",
    ];
    for f in production_files {
        let n = inv
            .sites
            .iter()
            .filter(|s| s.file == f && !s.in_test)
            .count();
        assert!(n > 0, "no non-test atomic sites extracted from {f}");
    }

    // Per-crate floors (production + test code), conservative against
    // the current source: runtime 13, obs 30, spec 23, distsim 19.
    let per_crate = |c: &str| inv.sites.iter().filter(|s| s.crate_name == c).count();
    assert!(
        per_crate("runtime") >= 13,
        "runtime: {}",
        per_crate("runtime")
    );
    assert!(per_crate("obs") >= 30, "obs: {}", per_crate("obs"));
    assert!(per_crate("spec") >= 23, "spec: {}", per_crate("spec"));
    assert!(
        per_crate("distsim") >= 19,
        "distsim: {}",
        per_crate("distsim")
    );

    // Both load-bearing fences (seqlock writer Release, reader
    // Acquire) must be modeled as sites.
    let fences: Vec<_> = inv
        .sites
        .iter()
        .filter(|s| s.op == "fence" && s.file == "crates/obs/src/ring.rs")
        .collect();
    assert!(
        fences
            .iter()
            .any(|s| s.ordering == "Release" && s.func == "record"),
        "missing the seqlock writer's Release fence"
    );
    assert!(
        fences
            .iter()
            .any(|s| s.ordering == "Acquire" && s.func == "snapshot"),
        "missing the seqlock reader's Acquire fence"
    );

    // The done-protocol's imported bare `SeqCst` orderings must be
    // recognized — a `Ordering::`-prefix-only scanner sees none.
    let spec_seqcst = inv
        .sites
        .iter()
        .filter(|s| s.file == "crates/spec/src/scheduler.rs" && s.ordering == "SeqCst")
        .count();
    assert!(spec_seqcst >= 20, "spec SeqCst sites: {spec_seqcst}");

    // Enclosing-fn attribution works for the protocol-bearing fns.
    for (file, func) in [
        ("crates/obs/src/ring.rs", "record"),
        ("crates/obs/src/ring.rs", "snapshot"),
        ("crates/runtime/src/pool.rs", "run_stealing"),
        ("crates/spec/src/scheduler.rs", "next_version_to_execute"),
    ] {
        assert!(
            !inv.fn_sites(file, func).is_empty(),
            "no sites attributed to {file} fn {func}"
        );
    }

    // Unsafe surface: the counting allocator in chem's alloc guard is
    // the only unsafe code in the workspace, and every occurrence
    // carries a SAFETY comment.
    assert!(!inv.unsafes.is_empty(), "unsafe extraction found nothing");
    for u in &inv.unsafes {
        assert!(
            u.file.starts_with("crates/chem/tests/"),
            "unexpected unsafe outside the alloc guard: {}:{}",
            u.file,
            u.line
        );
        assert!(u.has_safety, "undocumented unsafe at {}:{}", u.file, u.line);
    }

    // Receiver/type resolution: spot-check a struct field and a
    // local through Arc::new.
    assert!(
        inv.sites
            .iter()
            .any(|s| s.receiver == "head" && s.atomic_type == "AtomicU64"),
        "ring head receiver type not resolved"
    );
}
