//! Checks an extracted [`Inventory`] against the declared-protocol
//! [`Manifest`].
//!
//! Four layers, each a distinct finding kind (all reported through the
//! emx-analyze [`Violation`] vocabulary so CI reads one shape):
//!
//! 1. **Site coverage.** Every non-test atomic site must either match
//!    a manifest rule or — for `Relaxed` sites only — carry a
//!    `// relaxed-ok:` justification. A bare Relaxed site is
//!    [`UnmanagedOrdering`]; an uncovered *stronger* site is
//!    [`UndeclaredSite`] (new synchronization must declare its
//!    protocol before it lands).
//! 2. **Role discipline.** A site that matches rules but satisfies
//!    none of them — wrong ordering for the role, non-Relaxed op under
//!    a counter rule — is [`ProtocolMismatch`].
//! 3. **Sequence rules.** A rule with `sequence = […]` pins the named
//!    fn's complete non-test atomic-op list, exactly. Divergence is
//!    [`MissingFence`] when the expected-but-absent element is a
//!    fence (the PR-6 seqlock-writer bug), [`ProtocolMismatch`]
//!    otherwise. A rule matching no site at all is [`ManifestStale`].
//! 4. **Pairing and hygiene.** Acquire-bearing rules must name a
//!    Release-publishing partner role ([`UnpairedAcquire`]); every
//!    `unsafe` without a `// SAFETY:` comment — test code included —
//!    is [`MissingSafetyComment`].
//!
//! [`UnmanagedOrdering`]: ViolationKind::UnmanagedOrdering
//! [`UndeclaredSite`]: ViolationKind::UndeclaredSite
//! [`ProtocolMismatch`]: ViolationKind::ProtocolMismatch
//! [`MissingFence`]: ViolationKind::MissingFence
//! [`ManifestStale`]: ViolationKind::ManifestStale
//! [`UnpairedAcquire`]: ViolationKind::UnpairedAcquire
//! [`MissingSafetyComment`]: ViolationKind::MissingSafetyComment

use crate::extract::{AtomicSite, Inventory};
use crate::manifest::{Manifest, Protocol, Rule};
use emx_analyze::report::{AnalysisReport, Violation, ViolationKind};

/// Orderings that publish on the write side.
const RELEASING: &[&str] = &["Release", "AcqRel", "SeqCst"];

/// Runs every check; the returned report is clean iff the workspace
/// conforms to the manifest.
pub fn check(inv: &Inventory, manifest: &Manifest) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    check_sites(inv, manifest, &mut report);
    check_rules(inv, manifest, &mut report);
    check_unsafe(inv, &mut report);
    report
}

fn rule_matches(rule: &Rule, site: &AtomicSite) -> bool {
    rule.file == site.file
        && (rule.func == "*" || rule.func == site.func)
        && (rule.ops.is_empty() || rule.ops.iter().any(|o| o == &site.op))
}

/// All orderings at a site are `Relaxed` (for CAS, both of them).
fn fully_relaxed(site: &AtomicSite) -> bool {
    site.ordering == "Relaxed" && site.ordering2.as_deref().unwrap_or("Relaxed") == "Relaxed"
}

fn rule_satisfied(rule: &Rule, site: &AtomicSite) -> bool {
    if rule.relaxed_ok {
        return fully_relaxed(site);
    }
    if !rule.orderings.is_empty() {
        let key = format!("{} {}", site.op, site.ordering);
        let wild = format!("* {}", site.ordering);
        return rule.orderings.iter().any(|e| e == &key || e == &wild);
    }
    // A pure sequence rule: site-level always passes; the fn-level
    // exact-sequence check owns the verdict.
    true
}

fn check_sites(inv: &Inventory, manifest: &Manifest, report: &mut AnalysisReport) {
    let mut clean = 0usize;
    for site in inv.sites.iter().filter(|s| !s.in_test) {
        let matching: Vec<(&Protocol, &Rule)> = manifest
            .protocols
            .iter()
            .flat_map(|p| p.rules.iter().map(move |r| (p, r)))
            .filter(|(_, r)| rule_matches(r, site))
            .collect();
        if matching.is_empty() {
            if fully_relaxed(site) {
                if inv.relaxed_justified(&site.file, site.line) {
                    clean += 1;
                } else {
                    report.violations.push(Violation::new(
                        "srclint",
                        ViolationKind::UnmanagedOrdering,
                        site.location(),
                        format!(
                            "{}.{}({}) in fn `{}` is Relaxed with no manifest role and \
                             no `// relaxed-ok:` justification",
                            site.receiver, site.op, site.ordering, site.func
                        ),
                    ));
                }
            } else {
                report.violations.push(Violation::new(
                    "srclint",
                    ViolationKind::UndeclaredSite,
                    site.location(),
                    format!(
                        "{} {}({}) in fn `{}` synchronizes but no protocol in \
                         docs/protocols.toml covers it",
                        site.atomic_type, site.op, site.ordering, site.func
                    ),
                ));
            }
        } else if matching.iter().any(|(_, r)| rule_satisfied(r, site)) {
            clean += 1;
        } else {
            let roles: Vec<String> = matching
                .iter()
                .map(|(p, r)| format!("{}/{}", p.name, r.role))
                .collect();
            report.violations.push(Violation::new(
                matching[0].0.name.clone(),
                ViolationKind::ProtocolMismatch,
                site.location(),
                format!(
                    "{}.{}({}) in fn `{}` satisfies none of its declared roles [{}]",
                    site.receiver,
                    site.op,
                    site.ordering,
                    site.func,
                    roles.join(", ")
                ),
            ));
        }
    }
    if clean > 0 {
        report
            .passed
            .push(("srclint-sites".to_string(), format!("{clean} conforming")));
    }
}

fn check_rules(inv: &Inventory, manifest: &Manifest, report: &mut AnalysisReport) {
    for p in &manifest.protocols {
        let before = report.violations.len();
        for r in &p.rules {
            let matched = inv
                .sites
                .iter()
                .filter(|s| !s.in_test)
                .filter(|s| rule_matches(r, s))
                .count();
            if matched == 0 {
                report.violations.push(Violation::new(
                    p.name.clone(),
                    ViolationKind::ManifestStale,
                    format!("docs/protocols.toml:{}", r.line),
                    format!(
                        "role `{}` matches no site in {} fn `{}` — code moved or rule is dead",
                        r.role, r.file, r.func
                    ),
                ));
                continue;
            }
            if !r.sequence.is_empty() {
                check_sequence(inv, p, r, report);
            }
            if r.has_acquire() {
                check_pairing(p, r, report);
            }
        }
        if report.violations.len() == before {
            report
                .passed
                .push((p.name.clone(), "protocol-conforms".to_string()));
        }
    }
}

/// Exact-sequence check for one rule: the fn's full non-test atomic-op
/// list must equal `rule.sequence` element-for-element.
fn check_sequence(inv: &Inventory, p: &Protocol, r: &Rule, report: &mut AnalysisReport) {
    let sites = inv.fn_sites(&r.file, &r.func);
    let actual: Vec<String> = sites
        .iter()
        .map(|s| format!("{} {}", s.op, s.ordering))
        .collect();
    if actual == r.sequence {
        return;
    }
    // Locate the divergence for the report.
    let idx = actual
        .iter()
        .zip(r.sequence.iter())
        .position(|(a, e)| a != e)
        .unwrap_or_else(|| actual.len().min(r.sequence.len()));
    let expected_here = r.sequence.get(idx).map(String::as_str).unwrap_or("<end>");
    let actual_here = actual.get(idx).map(String::as_str).unwrap_or("<end>");
    // A fence expected where the source has none (or has run out of
    // ops) is the missing-fence bug class; anything else is a general
    // protocol mismatch.
    let expected_fences = r
        .sequence
        .iter()
        .filter(|e| e.starts_with("fence "))
        .count();
    let actual_fences = actual.iter().filter(|e| e.starts_with("fence ")).count();
    let kind = if expected_fences > actual_fences {
        ViolationKind::MissingFence
    } else {
        ViolationKind::ProtocolMismatch
    };
    let location = sites
        .first()
        .map(|s| s.location())
        .unwrap_or_else(|| r.file.clone());
    report.violations.push(Violation::new(
        p.name.clone(),
        kind,
        location,
        format!(
            "fn `{}` atomic-op sequence diverges from role `{}` at step {}: \
             expected `{}`, found `{}` (declared {} ops, source has {})",
            r.func,
            r.role,
            idx + 1,
            expected_here,
            actual_here,
            r.sequence.len(),
            actual.len()
        ),
    ));
}

/// Paired-ordering rule: an Acquire-side rule must name a partner role
/// that publishes with Release/AcqRel/SeqCst.
fn check_pairing(p: &Protocol, r: &Rule, report: &mut AnalysisReport) {
    let Some(partner) = &r.pairs else {
        report.violations.push(Violation::new(
            p.name.clone(),
            ViolationKind::UnpairedAcquire,
            format!("docs/protocols.toml:{}", r.line),
            format!(
                "role `{}` performs Acquire reads but names no Release partner (`pairs`)",
                r.role
            ),
        ));
        return;
    };
    let publishes = p
        .rules
        .iter()
        .filter(|o| &o.role == partner)
        .flat_map(|o| o.orderings.iter().chain(o.sequence.iter()))
        .any(|e| {
            let mut it = e.split_whitespace();
            let (op, ord) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            op != "load" && RELEASING.contains(&ord)
        });
    if !publishes {
        report.violations.push(Violation::new(
            p.name.clone(),
            ViolationKind::UnpairedAcquire,
            format!("docs/protocols.toml:{}", r.line),
            format!(
                "role `{}` pairs with `{partner}`, but `{partner}` declares no \
                 Release-side write",
                r.role
            ),
        ));
    }
}

fn check_unsafe(inv: &Inventory, report: &mut AnalysisReport) {
    let mut clean = 0usize;
    for u in &inv.unsafes {
        if u.has_safety {
            clean += 1;
        } else {
            report.violations.push(Violation::new(
                "srclint",
                ViolationKind::MissingSafetyComment,
                format!("{}:{}", u.file, u.line),
                format!(
                    "unsafe {} in fn `{}` has no `// SAFETY:` comment",
                    u.kind, u.func
                ),
            ));
        }
    }
    if clean > 0 {
        report
            .passed
            .push(("srclint-unsafe".to_string(), format!("{clean} documented")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::scan_file;
    use crate::manifest;

    fn inv_of(file: &str, src: &str) -> Inventory {
        let mut inv = Inventory::default();
        scan_file(file, src, &mut inv);
        inv
    }

    fn kinds(r: &AnalysisReport) -> Vec<ViolationKind> {
        r.violations.iter().map(|v| v.kind).collect()
    }

    const FILE: &str = "crates/demo/src/lib.rs";

    #[test]
    fn unjustified_relaxed_is_unmanaged() {
        let inv = inv_of(
            FILE,
            "fn f(n: &AtomicU64) { n.fetch_add(1, Ordering::Relaxed); }",
        );
        let m = Manifest::default();
        assert_eq!(
            kinds(&check(&inv, &m)),
            vec![ViolationKind::UnmanagedOrdering]
        );
    }

    #[test]
    fn relaxed_ok_comment_clears_uncovered_relaxed() {
        let src = "
fn f(n: &AtomicU64) {
    // relaxed-ok: local diagnostic counter.
    n.fetch_add(1, Ordering::Relaxed);
}";
        let inv = inv_of(FILE, src);
        assert!(check(&inv, &Manifest::default()).is_clean());
    }

    #[test]
    fn uncovered_strong_site_is_undeclared() {
        let inv = inv_of(
            FILE,
            "fn f(n: &AtomicU64) { n.store(1, Ordering::Release); }",
        );
        assert_eq!(
            kinds(&check(&inv, &Manifest::default())),
            vec![ViolationKind::UndeclaredSite]
        );
    }

    #[test]
    fn counter_rule_accepts_relaxed_and_flags_strong() {
        let toml = format!(
            "[[protocol]]\nname = \"c\"\n[[protocol.rule]]\nrole = \"count\"\nfile = \"{FILE}\"\nfn = \"*\"\nrelaxed_ok = true\n"
        );
        let m = manifest::parse(&toml).unwrap();
        let ok = inv_of(
            FILE,
            "fn f(n: &AtomicU64) { n.fetch_add(1, Ordering::Relaxed); }",
        );
        assert!(check(&ok, &m).is_clean());
        // The same role cannot excuse a Release store: that would let
        // a weakened protocol hide under a counter rule.
        let strong = inv_of(
            FILE,
            "fn f(n: &AtomicU64) { n.store(1, Ordering::Release); }",
        );
        assert_eq!(
            kinds(&check(&strong, &m)),
            vec![ViolationKind::ProtocolMismatch]
        );
    }

    #[test]
    fn orderings_rule_flags_weakened_site() {
        let toml = format!(
            "[[protocol]]\nname = \"flag\"\n[[protocol.rule]]\nrole = \"raise\"\nfile = \"{FILE}\"\nfn = \"raise\"\norderings = [\"store Release\"]\n"
        );
        let m = manifest::parse(&toml).unwrap();
        let good = inv_of(
            FILE,
            "fn raise(n: &AtomicBool) { n.store(true, Ordering::Release); }",
        );
        assert!(check(&good, &m).is_clean());
        let weak = inv_of(
            FILE,
            "fn raise(n: &AtomicBool) { n.store(true, Ordering::Relaxed); }",
        );
        assert_eq!(
            kinds(&check(&weak, &m)),
            vec![ViolationKind::ProtocolMismatch]
        );
    }

    #[test]
    fn sequence_rule_catches_removed_fence() {
        let toml = format!(
            "[[protocol]]\nname = \"seq\"\n[[protocol.rule]]\nrole = \"writer\"\nfile = \"{FILE}\"\nfn = \"publish\"\nsequence = [\"store Relaxed\", \"fence Release\", \"store Release\"]\n"
        );
        let m = manifest::parse(&toml).unwrap();
        let good = "
fn publish(a: &AtomicU64, b: &AtomicU64) {
    a.store(1, Ordering::Relaxed);
    fence(Ordering::Release);
    b.store(2, Ordering::Release);
}";
        assert!(check(&inv_of(FILE, good), &m).is_clean());
        let fenceless = "
fn publish(a: &AtomicU64, b: &AtomicU64) {
    a.store(1, Ordering::Relaxed);
    b.store(2, Ordering::Release);
}";
        assert_eq!(
            kinds(&check(&inv_of(FILE, fenceless), &m)),
            vec![ViolationKind::MissingFence]
        );
        let reordered = "
fn publish(a: &AtomicU64, b: &AtomicU64) {
    a.store(1, Ordering::Release);
    fence(Ordering::Release);
    b.store(2, Ordering::Release);
}";
        assert_eq!(
            kinds(&check(&inv_of(FILE, reordered), &m)),
            vec![ViolationKind::ProtocolMismatch]
        );
    }

    #[test]
    fn stale_rule_is_flagged() {
        let toml = format!(
            "[[protocol]]\nname = \"s\"\n[[protocol.rule]]\nrole = \"r\"\nfile = \"{FILE}\"\nfn = \"vanished\"\norderings = [\"load Acquire\"]\npairs = \"r\"\n"
        );
        let m = manifest::parse(&toml).unwrap();
        let inv = inv_of(FILE, "fn other() {}");
        assert_eq!(kinds(&check(&inv, &m)), vec![ViolationKind::ManifestStale]);
    }

    #[test]
    fn acquire_without_release_partner_is_unpaired() {
        // Partner exists (validation passes) but only reads.
        let toml = format!(
            "[[protocol]]\nname = \"p\"\n[[protocol.rule]]\nrole = \"obs\"\nfile = \"{FILE}\"\nfn = \"obs\"\norderings = [\"load Acquire\"]\npairs = \"also\"\n[[protocol.rule]]\nrole = \"also\"\nfile = \"{FILE}\"\nfn = \"also\"\norderings = [\"load Acquire\"]\npairs = \"obs\"\n"
        );
        let m = manifest::parse(&toml).unwrap();
        let src = "
fn obs(n: &AtomicU64) { n.load(Ordering::Acquire); }
fn also(n: &AtomicU64) { n.load(Ordering::Acquire); }";
        let inv = inv_of(FILE, src);
        let got = kinds(&check(&inv, &m));
        assert_eq!(
            got,
            vec![
                ViolationKind::UnpairedAcquire,
                ViolationKind::UnpairedAcquire
            ]
        );
    }

    #[test]
    fn undocumented_unsafe_is_flagged_even_in_tests() {
        let src = "
#[cfg(test)]
mod tests {
    fn t() { unsafe { go() } }
}";
        let inv = inv_of(FILE, src);
        assert_eq!(
            kinds(&check(&inv, &Manifest::default())),
            vec![ViolationKind::MissingSafetyComment]
        );
    }

    #[test]
    fn test_code_sites_are_exempt_from_site_coverage() {
        let src = "
#[cfg(test)]
mod tests {
    fn t(n: &AtomicU64) { n.store(1, Ordering::Release); }
}";
        let inv = inv_of(FILE, src);
        assert!(check(&inv, &Manifest::default()).is_clean());
    }
}
