//! A hand-rolled Rust lexer, just deep enough for concurrency-surface
//! extraction.
//!
//! The extractor ([`crate::extract`]) needs four things a grep cannot
//! deliver reliably:
//!
//! 1. **code tokens with line numbers**, so `.load(` inside a string
//!    literal or a doc comment is never mistaken for an atomic
//!    operation;
//! 2. **comment text with line numbers**, so `// SAFETY:` and
//!    `// relaxed-ok:` justifications can be attributed to the code
//!    they annotate;
//! 3. **string/char literal skipping** that understands raw strings
//!    (`r#"…"#`), escapes and lifetimes (`'a` is not an unterminated
//!    char literal);
//! 4. **nested block comments** (`/* /* */ */`), which Rust permits.
//!
//! The output is a flat token stream — identifiers, numbers and
//! single-character punctuation — deliberately simpler than a full
//! Rust grammar: the extractor re-assembles just the shapes it cares
//! about (method calls, `fn` items, brace depth) on top of it.

/// One lexed token, tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `Ordering`, `load`, …).
    Ident(String),
    /// Numeric literal (value unused; kept so token adjacency stays
    /// faithful).
    Num,
    /// A string/char literal, contents discarded.
    Lit,
    /// Single punctuation character (`.`, `(`, `{`, `:`, …).
    Punct(char),
}

/// A token plus the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// One comment (line or block), with the line it starts on and its
/// text with the comment markers stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment body (without `//`, `/*`, `*/`).
    pub text: String,
}

/// Lexer output: the code token stream and every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Spanned>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: malformed input
/// degrades to punctuation tokens rather than aborting, because a lint
/// must not be DOS-able by one odd file.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    let bump_lines = |s: &[char], from: usize, to: usize, line: &mut usize| {
        for c in &s[from..to] {
            if *c == '\n' {
                *line += 1;
            }
        }
    };

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == '/' => {
                // Line comment (includes /// and //!).
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Block comment, possibly nested.
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < n && depth > 0 {
                    if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                bump_lines(&b, i, j, &mut line);
                out.comments.push(Comment {
                    line: start_line,
                    text: b[start..end].iter().collect(),
                });
                i = j;
            }
            '"' => {
                // Plain string literal.
                let mut j = i + 1;
                while j < n {
                    match b[j] {
                        '\\' => j += 2,
                        '"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                let j = j.min(n);
                bump_lines(&b, i, j, &mut line);
                out.tokens.push(Spanned {
                    tok: Tok::Lit,
                    line,
                });
                i = j;
            }
            'r' if i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') && is_raw_string(&b, i) => {
                // Raw string r"…" / r#"…"#.
                let mut hashes = 0usize;
                let mut j = i + 1;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                let closer: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                let closer: Vec<char> = closer.chars().collect();
                while j < n && !matches_at(&b, j, &closer) {
                    j += 1;
                }
                let j = (j + closer.len()).min(n);
                bump_lines(&b, i, j, &mut line);
                out.tokens.push(Spanned {
                    tok: Tok::Lit,
                    line,
                });
                i = j;
            }
            '\'' => {
                // Char literal or lifetime. A lifetime is `'ident` not
                // followed by a closing quote.
                if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                    // Find the end of the ident run.
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' && j == i + 2 {
                        // 'x' — a one-char literal.
                        out.tokens.push(Spanned {
                            tok: Tok::Lit,
                            line,
                        });
                        i = j + 1;
                    } else {
                        // Lifetime: skip it entirely.
                        i = j;
                    }
                } else {
                    // Escaped or symbolic char literal: '\n', '\'', '('.
                    let mut j = i + 1;
                    if j < n && b[j] == '\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' {
                        j += 1;
                    }
                    out.tokens.push(Spanned {
                        tok: Tok::Lit,
                        line,
                    });
                    i = j.min(n);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Spanned {
                    tok: Tok::Ident(b[i..j].iter().collect()),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '.') {
                    // Stop a range expression `0..n` from being eaten
                    // as one number.
                    if b[j] == '.' && j + 1 < n && b[j + 1] == '.' {
                        break;
                    }
                    j += 1;
                }
                out.tokens.push(Spanned {
                    tok: Tok::Num,
                    line,
                });
                i = j;
            }
            c => {
                out.tokens.push(Spanned {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True when the `r` at `i` starts a raw string (`r"` or `r#…"`), as
/// opposed to an identifier that merely begins with `r`.
fn is_raw_string(b: &[char], i: usize) -> bool {
    // Preceded by an ident char ⇒ part of a longer identifier.
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

fn matches_at(b: &[char], at: usize, pat: &[char]) -> bool {
    at + pat.len() <= b.len() && b[at..at + pat.len()] == *pat
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(x) => Some(x),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r#"
            // a .load(Ordering::Relaxed) in a comment
            let s = "x.store(Ordering::Release)";
            /* fetch_add */
            y.load(Ordering::Acquire);
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"store".to_string()));
        assert!(!ids.contains(&"fetch_add".to_string()));
        assert!(ids.contains(&"load".to_string()));
        assert!(ids.contains(&"Acquire".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1;\n// SAFETY: fine\nunsafe {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("SAFETY:"));
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"a \" load \"#; }";
        let ids = idents(src);
        assert!(!ids.contains(&"load".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literals_do_not_swallow_code() {
        let src = "let c = '('; x.load(Ordering::Relaxed);";
        let ids = idents(src);
        assert!(ids.contains(&"load".to_string()));
        assert!(ids.contains(&"Relaxed".to_string()));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let src = "/* outer /* inner */ still comment */ fence(Ordering::SeqCst);";
        let ids = idents(src);
        assert_eq!(
            ids,
            vec!["fence", "Ordering", "SeqCst"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let s = \"line\none\";\nx.load(Ordering::Acquire);\n";
        let lexed = lex(src);
        let load = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("load".into()))
            .unwrap();
        assert_eq!(load.line, 3);
    }
}
