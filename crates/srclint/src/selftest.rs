//! Mutation self-test: proves the pass catches the bug classes it
//! exists for.
//!
//! A static-analysis gate that silently stopped firing is worse than
//! none. In the PR-4 style, this module re-introduces known-bad code
//! into a scratch mirror of the workspace source and asserts each
//! mutant is flagged with the **expected** finding kind — an escape is
//! itself a failure. The seeded mutants are not synthetic: two of them
//! are the exact bugs human review caught after the code shipped (the
//! PR-6 fence-less seqlock writer, the PR-7 done-protocol weakening).
//!
//! The mirror copies *every* workspace source plus the manifest, so
//! all other protocol rules stay satisfied and the check isolates the
//! one seeded defect.

use crate::{check, extract, manifest};
use emx_analyze::report::ViolationKind;
use std::path::{Path, PathBuf};

/// One seeded defect and the finding it must produce.
pub struct Mutant {
    /// Short name for failure messages.
    pub name: &'static str,
    /// Repo-relative file to mutate (source or the manifest).
    pub file: &'static str,
    /// Exact text that must exist in the file (staleness guard).
    pub find: &'static str,
    /// Replacement text introducing the defect.
    pub replace: &'static str,
    /// The finding kind the pass must emit.
    pub expect: ViolationKind,
    /// Substring the finding's location must contain.
    pub expect_at: &'static str,
}

/// The seeded mutants. The first two are the historical review-caught
/// bugs; the rest cover the remaining finding kinds.
pub fn builtin_mutants() -> Vec<Mutant> {
    vec![
        // PR 6, exact pre-fix state: the seqlock writer published
        // payload stores with no Release fence after the odd-sequence
        // store, so a reader could see fresh payload under a stale
        // even sequence word and accept a torn event.
        Mutant {
            name: "pr6-fenceless-seqlock-writer",
            file: "crates/obs/src/ring.rs",
            find: "        fence(Ordering::Release);\n        slot.w0.store(",
            replace: "        slot.w0.store(",
            expect: ViolationKind::MissingFence,
            expect_at: "crates/obs/src/ring.rs",
        },
        // PR 7 bug class: weakening the done-protocol's active-count
        // raise below SeqCst re-opens the quiescence race the TOCTOU
        // fix closed.
        Mutant {
            name: "pr7-relaxed-done-counter",
            file: "crates/spec/src/scheduler.rs",
            find: "        self.num_active.fetch_add(1, SeqCst);\n        let idx = self.execution_idx.fetch_add(1, SeqCst);",
            replace: "        self.num_active.fetch_add(1, Relaxed);\n        let idx = self.execution_idx.fetch_add(1, SeqCst);",
            expect: ViolationKind::ProtocolMismatch,
            expect_at: "crates/spec/src/scheduler.rs",
        },
        // A new Relaxed counter nobody declared or justified.
        Mutant {
            name: "unjustified-relaxed-counter",
            file: "crates/runtime/src/pool.rs",
            find: "use std::sync::atomic::{AtomicUsize, Ordering};",
            replace: "use std::sync::atomic::{AtomicUsize, Ordering};\nfn srclint_mutant_counter(n: &AtomicUsize) -> usize {\n    n.fetch_add(1, Ordering::Relaxed)\n}",
            expect: ViolationKind::UnmanagedOrdering,
            expect_at: "crates/runtime/src/pool.rs",
        },
        // New synchronization (an Acquire load) with no protocol.
        Mutant {
            name: "undeclared-acquire-site",
            file: "crates/runtime/src/pool.rs",
            find: "use std::sync::atomic::{AtomicUsize, Ordering};",
            replace: "use std::sync::atomic::{AtomicUsize, Ordering};\nfn srclint_mutant_flag(n: &AtomicUsize) -> usize {\n    n.load(Ordering::Acquire)\n}",
            expect: ViolationKind::UndeclaredSite,
            expect_at: "crates/runtime/src/pool.rs",
        },
        // An unsafe block with no SAFETY comment.
        Mutant {
            name: "undocumented-unsafe",
            file: "crates/runtime/src/pool.rs",
            find: "use std::sync::atomic::{AtomicUsize, Ordering};",
            replace: "use std::sync::atomic::{AtomicUsize, Ordering};\nfn srclint_mutant_unsafe() -> usize {\n    unsafe { String::new().as_mut_vec().len() }\n}",
            expect: ViolationKind::MissingSafetyComment,
            expect_at: "crates/runtime/src/pool.rs",
        },
        // Manifest drift: a rule whose fn no longer exists.
        Mutant {
            name: "stale-manifest-rule",
            file: "docs/protocols.toml",
            find: "fn        = \"snapshot\"",
            replace: "fn        = \"snapshot_renamed_away\"",
            expect: ViolationKind::ManifestStale,
            expect_at: "docs/protocols.toml",
        },
        // Manifest weakening: the seqlock reader drops its pairing
        // declaration.
        Mutant {
            name: "unpaired-acquire-reader",
            file: "docs/protocols.toml",
            find: "pairs     = \"writer\" # seqlock-reader-pair",
            replace: "",
            expect: ViolationKind::UnpairedAcquire,
            expect_at: "docs/protocols.toml",
        },
    ]
}

/// Mirrors the scannable workspace (`crates/**`, `tests/**`,
/// `examples/**` `.rs` files, plus the manifest) from `root` into
/// `work`, returning the copied file list.
pub fn mirror_workspace(root: &Path, work: &Path) -> Result<Vec<PathBuf>, String> {
    let mut copied = Vec::new();
    let mut stack = vec![
        "crates".to_string(),
        "tests".to_string(),
        "examples".to_string(),
    ];
    let mut files: Vec<String> = vec![crate::MANIFEST_PATH.to_string()];
    while let Some(rel) = stack.pop() {
        let dir = root.join(&rel);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().to_string();
            let child = format!("{rel}/{name}");
            let p = e.path();
            if p.is_dir() {
                if name != "target" {
                    stack.push(child);
                }
            } else if name.ends_with(".rs") {
                files.push(child);
            }
        }
    }
    for rel in files {
        let src = root.join(&rel);
        let dst = work.join(&rel);
        if let Some(parent) = dst.parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
        std::fs::copy(&src, &dst).map_err(|e| format!("copy {rel}: {e}"))?;
        copied.push(dst);
    }
    Ok(copied)
}

fn run_on(work: &Path) -> Result<emx_analyze::report::AnalysisReport, String> {
    let m = manifest::Manifest::load(&work.join(crate::MANIFEST_PATH))?;
    let inv = extract::scan_workspace(work);
    Ok(check::check(&inv, &m))
}

/// Runs every builtin mutant against a mirror of `root` rooted at
/// `work` (created if needed, reused if present). Returns the list of
/// failures — empty means the pass caught everything, including the
/// baseline being clean before any mutation.
pub fn run_mutants(root: &Path, work: &Path) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(work).map_err(|e| format!("mkdir {work:?}: {e}"))?;
    mirror_workspace(root, work)?;
    let mut failures = Vec::new();

    let baseline = run_on(work)?;
    if !baseline.is_clean() {
        for v in &baseline.violations {
            failures.push(format!("baseline not clean: {v}"));
        }
        return Ok(failures);
    }

    for m in builtin_mutants() {
        let path = work.join(m.file);
        let original =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", m.file))?;
        if !original.contains(m.find) {
            failures.push(format!(
                "mutant `{}` is stale: `{}` no longer contains its anchor text",
                m.name, m.file
            ));
            continue;
        }
        let mutated = original.replacen(m.find, m.replace, 1);
        std::fs::write(&path, &mutated).map_err(|e| format!("write {}: {e}", m.file))?;
        let verdict = run_on(work);
        std::fs::write(&path, &original).map_err(|e| format!("restore {}: {e}", m.file))?;
        match verdict {
            Ok(report) => {
                let caught = report
                    .violations
                    .iter()
                    .any(|v| v.kind == m.expect && v.scenario.contains(m.expect_at));
                if !caught {
                    let got: Vec<String> =
                        report.violations.iter().map(|v| v.to_string()).collect();
                    failures.push(format!(
                        "ESCAPE: mutant `{}` not flagged as {} at {} (findings: [{}])",
                        m.name,
                        m.expect.name(),
                        m.expect_at,
                        got.join("; ")
                    ));
                }
            }
            // A manifest mutant may make the manifest unparseable;
            // that still counts as caught only when the mutant expects
            // a manifest finding — otherwise it is a self-test bug.
            Err(e) => {
                failures.push(format!(
                    "mutant `{}`: run failed instead of reporting {}: {e}",
                    m.name,
                    m.expect.name()
                ));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_finding_kind_has_a_mutant() {
        let kinds: Vec<ViolationKind> = builtin_mutants().iter().map(|m| m.expect).collect();
        for k in [
            ViolationKind::MissingFence,
            ViolationKind::ProtocolMismatch,
            ViolationKind::UnmanagedOrdering,
            ViolationKind::UndeclaredSite,
            ViolationKind::MissingSafetyComment,
            ViolationKind::ManifestStale,
            ViolationKind::UnpairedAcquire,
        ] {
            assert!(kinds.contains(&k), "no mutant exercises {}", k.name());
        }
    }
}
