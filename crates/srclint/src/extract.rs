//! Atomic-site and `unsafe`-site extraction over the lexed token
//! stream.
//!
//! For every Rust source file under the workspace's own roots
//! (`crates/`, `tests/`, `examples/` — never `vendor/`), the extractor
//! produces a model of the concurrency surface:
//!
//! * an [`AtomicSite`] for every atomic operation — a method call
//!   (`load`, `store`, `swap`, `fetch_*`, `compare_exchange[_weak]`,
//!   `fetch_update`) whose arguments contain a memory-[`Ordering`]
//!   token, plus every free `fence(Ordering::…)` call. Requiring an
//!   ordering token is what separates `AtomicUsize::swap` from
//!   `Vec::swap` without type inference;
//! * an [`UnsafeSite`] for every `unsafe` keyword (block, fn, impl,
//!   trait), tagged with whether a `// SAFETY:` comment sits on it;
//! * the enclosing function name (tracked by `fn` items and brace
//!   depth) and whether the site is test code (under a `tests/`
//!   directory, or at/after the file's first top-level
//!   `#[cfg(test)]`).
//!
//! The receiver's declared atomic type is resolved best-effort from
//! declarations seen in the same file (`name: AtomicU64`,
//! `name = AtomicUsize::new(…)`, including through `Vec<…>`/`Arc<…>`
//! wrappers); an unresolvable receiver is reported as `"?"`, never
//! silently dropped.
//!
//! [`Ordering`]: std::sync::atomic::Ordering

use crate::lex::{lex, Comment, Spanned, Tok};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Atomic operations the extractor recognizes. `fence` is the only
/// free function; the rest are method calls.
pub const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "fence",
];

/// The five memory orderings.
pub const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One atomic operation in the workspace source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    /// Workspace crate directory name (`obs`, `runtime`, …) or the
    /// root pseudo-crates `tests`/`examples`.
    pub crate_name: String,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line of the operation.
    pub line: usize,
    /// Declared type of the receiver (`AtomicU64`, …), `"fence"` for
    /// fences, `"?"` when unresolvable.
    pub atomic_type: String,
    /// Receiver's final path segment (`head`, `remaining`, …); empty
    /// for fences.
    pub receiver: String,
    /// Operation name (`load`, `fetch_add`, `fence`, …).
    pub op: String,
    /// Primary ordering (the success ordering for CAS/`fetch_update`).
    pub ordering: String,
    /// Failure ordering for two-ordering operations.
    pub ordering2: Option<String>,
    /// Enclosing function name, `"-"` at item scope.
    pub func: String,
    /// True for test code.
    pub in_test: bool,
}

impl AtomicSite {
    /// `file:line` location string used in reports.
    pub fn location(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// One `unsafe` keyword occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What the keyword introduces: `block`, `fn`, `impl`, `trait`,
    /// `extern`, or `other`.
    pub kind: String,
    /// Enclosing function, `"-"` at item scope.
    pub func: String,
    /// True when a `// SAFETY:` comment sits within the three lines
    /// above (or on) the keyword.
    pub has_safety: bool,
    /// True for test code.
    pub in_test: bool,
}

/// The extracted concurrency surface of the workspace.
#[derive(Debug, Default)]
pub struct Inventory {
    /// Every atomic site, in (file, line) order.
    pub sites: Vec<AtomicSite>,
    /// Every `unsafe` occurrence, in (file, line) order.
    pub unsafes: Vec<UnsafeSite>,
    /// Comments per file (for `// relaxed-ok:` justification lookup).
    pub comments: BTreeMap<String, Vec<Comment>>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Inventory {
    /// True when a `// relaxed-ok:` comment sits on `line` or within
    /// the two lines above it in `file`.
    pub fn relaxed_justified(&self, file: &str, line: usize) -> bool {
        self.comment_near(file, line, "relaxed-ok:")
    }

    fn comment_near(&self, file: &str, line: usize, needle: &str) -> bool {
        let Some(comments) = self.comments.get(file) else {
            return false;
        };
        comments
            .iter()
            .any(|c| c.line + 3 > line && c.line <= line && c.text.contains(needle))
    }

    /// Sites in `file` within function `func`, non-test only, in
    /// source order.
    pub fn fn_sites(&self, file: &str, func: &str) -> Vec<&AtomicSite> {
        self.sites
            .iter()
            .filter(|s| s.file == file && s.func == func && !s.in_test)
            .collect()
    }
}

/// Scans every workspace-owned Rust source under `root` (the
/// repository root): `crates/**`, `tests/**`, `examples/**`. The
/// vendored dependency stand-ins under `vendor/` are third-party code
/// and are deliberately out of scope.
pub fn scan_workspace(root: &Path) -> Inventory {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut inv = Inventory::default();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        scan_file(&rel, &text, &mut inv);
        inv.files_scanned += 1;
    }
    inv
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            // `target/` never sits under crates/, but guard anyway.
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("?").to_string(),
        Some(top) => top.to_string(),
        None => "?".to_string(),
    }
}

/// First line (1-based) at which test code starts: the file's first
/// `#[cfg(test)]` attribute at the start of a (trimmed) line — the
/// workspace convention keeps test modules below all production code —
/// or `usize::MAX` when the file has none. Files under a `tests/`
/// directory are test code in full.
fn test_boundary(rel: &str, text: &str) -> usize {
    if rel.split('/').any(|seg| seg == "tests") {
        return 0;
    }
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            return i + 1;
        }
    }
    usize::MAX
}

/// Extracts sites from one file into `inv`.
pub fn scan_file(rel: &str, text: &str, inv: &mut Inventory) {
    let lexed = lex(text);
    let toks = &lexed.tokens;
    let crate_name = crate_of(rel);
    let test_from = test_boundary(rel, text);
    let decls = atomic_decls(toks);

    // Enclosing-fn tracking state.
    let mut depth: usize = 0;
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut paren_depth: usize = 0;

    let mut i = 0usize;
    while i < toks.len() {
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Ident(id) if id == "fn" => {
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                    pending_fn = Some(name.clone());
                    paren_depth = 0;
                }
            }
            Tok::Punct('(') | Tok::Punct('[') if pending_fn.is_some() => {
                paren_depth += 1;
            }
            Tok::Punct(')') | Tok::Punct(']') if pending_fn.is_some() => {
                paren_depth = paren_depth.saturating_sub(1);
            }
            Tok::Punct(';') if paren_depth == 0 => {
                pending_fn = None; // trait method declaration
            }
            Tok::Punct('{') => {
                depth += 1;
                if paren_depth == 0 {
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push((name, depth));
                    }
                }
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                while fn_stack.last().is_some_and(|(_, d)| *d > depth) {
                    fn_stack.pop();
                }
            }
            Tok::Ident(id) if id == "unsafe" => {
                let kind = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Punct('{')) => "block",
                    Some(Tok::Ident(k)) if k == "fn" => "fn",
                    Some(Tok::Ident(k)) if k == "impl" => "impl",
                    Some(Tok::Ident(k)) if k == "trait" => "trait",
                    Some(Tok::Ident(k)) if k == "extern" => "extern",
                    _ => "other",
                };
                let has_safety = lexed
                    .comments
                    .iter()
                    .any(|c| c.line + 4 > line && c.line <= line && c.text.contains("SAFETY:"));
                inv.unsafes.push(UnsafeSite {
                    file: rel.to_string(),
                    line,
                    kind: kind.to_string(),
                    func: fn_stack
                        .last()
                        .map(|(n, _)| n.clone())
                        .unwrap_or_else(|| "-".to_string()),
                    has_safety,
                    in_test: line >= test_from,
                });
            }
            Tok::Ident(id) if ATOMIC_OPS.contains(&id.as_str()) => {
                if let Some(site) = try_site(toks, i, rel, &crate_name, &decls) {
                    let func = fn_stack
                        .last()
                        .map(|(n, _)| n.clone())
                        .unwrap_or_else(|| "-".to_string());
                    inv.sites.push(AtomicSite {
                        func,
                        in_test: line >= test_from,
                        ..site
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }

    inv.comments.insert(rel.to_string(), lexed.comments);
}

/// Declared atomic types in this token stream:
/// `name: [Vec<|Arc<|Box<|Option<]* AtomicX` and
/// `name = AtomicX::new(…)` both map `name → AtomicX`.
fn atomic_decls(toks: &[Spanned]) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for (k, t) in toks.iter().enumerate() {
        let Tok::Ident(ty) = &t.tok else { continue };
        if !ty.starts_with("Atomic") || ty == "Atomic" {
            continue;
        }
        // Walk back over wrapper generics, references and `::new(`
        // layers to the introducing `:` or `=`.
        let mut j = k;
        while j > 0 {
            j -= 1;
            match &toks[j].tok {
                Tok::Punct('<') | Tok::Punct('&') | Tok::Punct('(') => continue,
                Tok::Ident(w) if matches!(w.as_str(), "Vec" | "Arc" | "Box" | "Option" | "new") => {
                    continue
                }
                Tok::Punct(':') | Tok::Punct('=') => {
                    // Skip a `::` path separator (e.g. `atomic::AtomicU64`).
                    if toks[j].tok == Tok::Punct(':') && j > 0 && toks[j - 1].tok == Tok::Punct(':')
                    {
                        j -= 1;
                        continue;
                    }
                    if let Some(Tok::Ident(name)) = toks.get(j.wrapping_sub(1)).map(|t| &t.tok) {
                        map.entry(name.clone()).or_insert_with(|| ty.clone());
                    }
                    break;
                }
                _ => break,
            }
        }
    }
    map
}

/// Tries to read an atomic-operation site at token index `i` (which
/// holds an op identifier). Returns `None` when the shape doesn't
/// match — no call parens, or no ordering token among the arguments.
fn try_site(
    toks: &[Spanned],
    i: usize,
    rel: &str,
    crate_name: &str,
    decls: &BTreeMap<String, String>,
) -> Option<AtomicSite> {
    let Tok::Ident(op) = &toks[i].tok else {
        return None;
    };
    let is_fence = op == "fence";
    // Must be a call.
    if toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
        return None;
    }
    let dotted = i > 0 && toks[i - 1].tok == Tok::Punct('.');
    if is_fence {
        // A free function, never a method.
        if dotted {
            return None;
        }
    } else if !dotted {
        return None;
    }

    // Collect ordering idents among the call's arguments.
    let mut orders = Vec::new();
    let mut depth = 1usize;
    let mut j = i + 2;
    while j < toks.len() && depth > 0 {
        match &toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            Tok::Ident(x) if ORDERINGS.contains(&x.as_str()) => {
                // Exclude `cmp::Ordering`-style false positives by
                // construction: Less/Equal/Greater are not in the set.
                orders.push(x.clone());
            }
            _ => {}
        }
        j += 1;
    }
    if orders.is_empty() {
        return None;
    }

    let (receiver, atomic_type) = if is_fence {
        (String::new(), "fence".to_string())
    } else {
        let recv = receiver_name(toks, i - 1);
        let ty = recv
            .as_deref()
            .and_then(|r| decls.get(r).cloned())
            .unwrap_or_else(|| "?".to_string());
        (recv.unwrap_or_else(|| "?".to_string()), ty)
    };

    Some(AtomicSite {
        crate_name: crate_name.to_string(),
        file: rel.to_string(),
        line: toks[i].line,
        atomic_type,
        receiver,
        op: op.clone(),
        ordering: orders[0].clone(),
        ordering2: orders.get(1).cloned(),
        func: String::new(), // filled by caller
        in_test: false,      // filled by caller
    })
}

/// The receiver's final path segment, walking back from the `.` at
/// token index `dot`: `self.ring.head.load(…)` → `head`;
/// `self.buckets[idx].fetch_add(…)` → `buckets`.
fn receiver_name(toks: &[Spanned], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        match &toks[j].tok {
            Tok::Ident(name) => return Some(name.clone()),
            Tok::Punct(']') => {
                // Skip the index expression back to its `[`.
                let mut depth = 1usize;
                while depth > 0 {
                    j = j.checked_sub(1)?;
                    match &toks[j].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
                j = j.checked_sub(1)?;
            }
            Tok::Punct(')') => {
                let mut depth = 1usize;
                while depth > 0 {
                    j = j.checked_sub(1)?;
                    match &toks[j].tok {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
                j = j.checked_sub(1)?;
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Inventory {
        let mut inv = Inventory::default();
        scan_file("crates/demo/src/lib.rs", src, &mut inv);
        inv
    }

    #[test]
    fn extracts_method_ops_with_receiver_type_and_fn() {
        let src = "
            struct S { head: AtomicU64 }
            impl S {
                fn publish(&self) {
                    self.head.store(1, Ordering::Release);
                }
                fn read(&self) -> u64 {
                    self.head.load(Ordering::Acquire)
                }
            }
        ";
        let inv = scan(src);
        assert_eq!(inv.sites.len(), 2);
        let s = &inv.sites[0];
        assert_eq!(
            (
                s.op.as_str(),
                s.ordering.as_str(),
                s.receiver.as_str(),
                s.atomic_type.as_str(),
                s.func.as_str()
            ),
            ("store", "Release", "head", "AtomicU64", "publish")
        );
        assert_eq!(inv.sites[1].func, "read");
        assert_eq!(inv.sites[1].crate_name, "demo");
    }

    #[test]
    fn vec_swap_is_not_an_atomic_site() {
        let src = "fn f(v: &mut Vec<u32>) { v.swap(0, 1); }";
        assert!(scan(src).sites.is_empty());
    }

    #[test]
    fn bare_imported_orderings_are_recognized() {
        let src = "
            use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
            fn claim(n: &AtomicUsize) -> usize { n.fetch_add(1, SeqCst) }
        ";
        let inv = scan(src);
        assert_eq!(inv.sites.len(), 1);
        assert_eq!(inv.sites[0].ordering, "SeqCst");
        assert_eq!(inv.sites[0].op, "fetch_add");
    }

    #[test]
    fn fence_and_cas_record_orderings() {
        let src = "
            fn f(n: &AtomicUsize) {
                fence(Ordering::Release);
                let _ = n.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Acquire);
            }
        ";
        let inv = scan(src);
        assert_eq!(inv.sites.len(), 2);
        assert_eq!(inv.sites[0].op, "fence");
        assert_eq!(inv.sites[0].atomic_type, "fence");
        assert_eq!(inv.sites[1].ordering, "AcqRel");
        assert_eq!(inv.sites[1].ordering2.as_deref(), Some("Acquire"));
    }

    #[test]
    fn indexed_receiver_resolves_through_brackets() {
        let src = "
            struct H { buckets: Vec<AtomicU64> }
            impl H {
                fn record(&self, i: usize) {
                    self.buckets[idx(i)].fetch_add(1, Ordering::Relaxed);
                }
            }
        ";
        let inv = scan(src);
        assert_eq!(inv.sites.len(), 1);
        assert_eq!(inv.sites[0].receiver, "buckets");
        assert_eq!(inv.sites[0].atomic_type, "AtomicU64");
    }

    #[test]
    fn cfg_test_boundary_marks_test_sites() {
        let src = "
fn prod(n: &AtomicU64) { n.load(Ordering::Relaxed); }
#[cfg(test)]
mod tests {
    fn t(n: &AtomicU64) { n.load(Ordering::Relaxed); }
}
";
        let inv = scan(src);
        assert_eq!(inv.sites.len(), 2);
        assert!(!inv.sites[0].in_test);
        assert!(inv.sites[1].in_test);
    }

    #[test]
    fn unsafe_sites_and_safety_comments() {
        let src = "
fn a() {
    // SAFETY: the pointer is valid for the call.
    unsafe { go() }
}
fn b() {
    unsafe { go() }
}
unsafe fn c() {}
";
        let inv = scan(src);
        assert_eq!(inv.unsafes.len(), 3);
        assert!(inv.unsafes[0].has_safety);
        assert_eq!(inv.unsafes[0].kind, "block");
        assert_eq!(inv.unsafes[0].func, "a");
        assert!(!inv.unsafes[1].has_safety);
        assert_eq!(inv.unsafes[2].kind, "fn");
    }

    #[test]
    fn relaxed_ok_comment_lookup() {
        let src = "
fn f(n: &AtomicU64) {
    // relaxed-ok: monotonic counter, no payload published.
    n.fetch_add(1, Ordering::Relaxed);
    n.fetch_add(1, Ordering::Relaxed);
}
";
        let inv = scan(src);
        let file = "crates/demo/src/lib.rs";
        assert!(inv.relaxed_justified(file, inv.sites[0].line));
        // The second site is 2 lines below the comment: still within
        // the window? The comment is on line 3, site on line 5.
        assert!(inv.relaxed_justified(file, inv.sites[1].line));
        assert!(!inv.relaxed_justified(file, inv.sites[1].line + 5));
    }

    #[test]
    fn ops_inside_strings_and_comments_are_ignored() {
        let src = r#"
fn f() {
    let s = "x.load(Ordering::Acquire)";
    // y.store(1, Ordering::Release);
}
"#;
        assert!(scan(src).sites.is_empty());
    }

    #[test]
    fn tests_directory_files_are_all_test_code() {
        let mut inv = Inventory::default();
        scan_file(
            "crates/runtime/tests/loom_x.rs",
            "fn f(n: &AtomicU64) { n.load(Ordering::Acquire); }",
            &mut inv,
        );
        assert_eq!(inv.sites.len(), 1);
        assert!(inv.sites[0].in_test);
    }
}
