//! The declared memory-protocol manifest (`docs/protocols.toml`).
//!
//! Each `[[protocol]]` names one synchronization discipline (the
//! seqlock ring, the work-stealing termination counter, the Block-STM
//! done protocol, …) and carries `[[protocol.rule]]` entries binding
//! source locations to roles:
//!
//! ```toml
//! [[protocol]]
//! name = "runtime-ws-termination"
//! doc  = "remaining-task counter that gates pool shutdown"
//!
//! [[protocol.rule]]
//! role      = "publish"
//! file      = "crates/runtime/src/pool.rs"
//! fn        = "run_stealing"
//! ops       = ["fetch_sub"]
//! orderings = ["fetch_sub Release"]
//!
//! [[protocol.rule]]
//! role      = "check"
//! file      = "crates/runtime/src/pool.rs"
//! fn        = "run_stealing"
//! ops       = ["load"]
//! orderings = ["load Acquire"]
//! pairs     = "publish"
//! ```
//!
//! Rule semantics (enforced by [`crate::check`]):
//!
//! * `relaxed_ok = true` — the matched sites are plain counters; every
//!   ordering at the site must literally be `Relaxed` (a counter rule
//!   never excuses a site that *should* be stronger).
//! * `orderings = ["op Ordering", …]` — the site's `(op, primary
//!   ordering)` must appear in the list; `"* Ordering"` matches any op.
//! * `sequence = […]` — the named fn's complete non-test atomic-op
//!   list must equal the sequence **exactly** (each element
//!   `"op Ordering"`). Exact matching is what catches a *removed*
//!   fence, not just a reordered one.
//! * `pairs = "role"` — required on any rule whose orderings/sequence
//!   contain an explicit `Acquire` (the paired-ordering rule): the
//!   named role must exist in the same protocol and perform a
//!   Release-side write.
//!
//! The parser is a deliberate TOML subset (tables-of-tables, string /
//! string-array / bool / int values, `#` comments) — enough for the
//! manifest, zero new dependencies, and any line it does not
//! understand is a hard error rather than a silent skip.

/// One location-binding rule inside a protocol.
#[derive(Debug, Clone, Default)]
pub struct Rule {
    /// Role name within the protocol (`writer`, `reader`, `publish`…).
    pub role: String,
    /// Repo-relative file the rule binds to.
    pub file: String,
    /// Enclosing fn name, or `"*"` for any fn in the file.
    pub func: String,
    /// When non-empty, the rule only governs these ops.
    pub ops: Vec<String>,
    /// Counter rule: every matched site must be `Relaxed`.
    pub relaxed_ok: bool,
    /// Allowed `(op, ordering)` entries, each `"op Ordering"`.
    pub orderings: Vec<String>,
    /// Exact full atomic-op sequence for the fn, each `"op Ordering"`.
    pub sequence: Vec<String>,
    /// Release-side partner role for Acquire-bearing rules.
    pub pairs: Option<String>,
    /// 1-based manifest line the rule starts on (for findings).
    pub line: usize,
}

impl Rule {
    /// True when the rule's declared orderings or sequence contain an
    /// Acquire-side element, which makes `pairs` mandatory.
    pub fn has_acquire(&self) -> bool {
        self.orderings
            .iter()
            .chain(self.sequence.iter())
            .any(|e| e.ends_with(" Acquire"))
    }
}

/// One declared protocol.
#[derive(Debug, Clone, Default)]
pub struct Protocol {
    /// Protocol name.
    pub name: String,
    /// One-line description.
    pub doc: String,
    /// Location-binding rules.
    pub rules: Vec<Rule>,
}

/// The parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// All declared protocols.
    pub protocols: Vec<Protocol>,
}

impl Manifest {
    /// Loads and parses a manifest file.
    pub fn load(path: &std::path::Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse(&text)
    }
}

/// Parses manifest text. Errors carry the offending line number.
pub fn parse(text: &str) -> Result<Manifest, String> {
    let mut m = Manifest::default();
    // Which table a `key = value` line belongs to.
    enum Ctx {
        None,
        Protocol,
        Rule,
    }
    let mut ctx = Ctx::None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[protocol]]" {
            m.protocols.push(Protocol::default());
            ctx = Ctx::Protocol;
            continue;
        }
        if line == "[[protocol.rule]]" {
            let p = m
                .protocols
                .last_mut()
                .ok_or_else(|| format!("line {lineno}: rule before any [[protocol]]"))?;
            p.rules.push(Rule {
                line: lineno,
                ..Rule::default()
            });
            ctx = Ctx::Rule;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unsupported table `{line}`"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`, got `{line}`"))?;
        let key = key.trim();
        let value = value.trim();
        match ctx {
            Ctx::None => return Err(format!("line {lineno}: `{key}` outside any table")),
            Ctx::Protocol => {
                let p = m.protocols.last_mut().expect("ctx Protocol implies one");
                match key {
                    "name" => p.name = parse_string(value, lineno)?,
                    "doc" => p.doc = parse_string(value, lineno)?,
                    _ => return Err(format!("line {lineno}: unknown protocol key `{key}`")),
                }
            }
            Ctx::Rule => {
                let r = m
                    .protocols
                    .last_mut()
                    .and_then(|p| p.rules.last_mut())
                    .expect("ctx Rule implies one");
                match key {
                    "role" => r.role = parse_string(value, lineno)?,
                    "file" => r.file = parse_string(value, lineno)?,
                    "fn" => r.func = parse_string(value, lineno)?,
                    "ops" => r.ops = parse_string_array(value, lineno)?,
                    "relaxed_ok" => r.relaxed_ok = parse_bool(value, lineno)?,
                    "orderings" => r.orderings = parse_string_array(value, lineno)?,
                    "sequence" => r.sequence = parse_string_array(value, lineno)?,
                    "pairs" => r.pairs = Some(parse_string(value, lineno)?),
                    _ => return Err(format!("line {lineno}: unknown rule key `{key}`")),
                }
            }
        }
    }
    validate(&m)?;
    Ok(m)
}

/// Structural validation, independent of any source scan.
fn validate(m: &Manifest) -> Result<(), String> {
    for p in &m.protocols {
        if p.name.is_empty() {
            return Err("protocol without a name".to_string());
        }
        for r in &p.rules {
            if r.role.is_empty() || r.file.is_empty() || r.func.is_empty() {
                return Err(format!(
                    "protocol `{}` line {}: rule needs role, file and fn",
                    p.name, r.line
                ));
            }
            if r.relaxed_ok && (!r.orderings.is_empty() || !r.sequence.is_empty()) {
                return Err(format!(
                    "protocol `{}` role `{}`: relaxed_ok excludes orderings/sequence",
                    p.name, r.role
                ));
            }
            if !r.relaxed_ok && r.orderings.is_empty() && r.sequence.is_empty() {
                return Err(format!(
                    "protocol `{}` role `{}`: rule declares no discipline \
                     (need relaxed_ok, orderings or sequence)",
                    p.name, r.role
                ));
            }
            if !r.sequence.is_empty() && r.func == "*" {
                return Err(format!(
                    "protocol `{}` role `{}`: sequence needs an exact fn, not \"*\"",
                    p.name, r.role
                ));
            }
            for e in r.orderings.iter().chain(r.sequence.iter()) {
                let mut it = e.split_whitespace();
                let (op, ord, extra) = (it.next(), it.next(), it.next());
                let ok = matches!((op, ord, extra), (Some(op), Some(ord), None)
                    if (op == "*" || crate::extract::ATOMIC_OPS.contains(&op))
                        && crate::extract::ORDERINGS.contains(&ord));
                if !ok {
                    return Err(format!(
                        "protocol `{}` role `{}`: malformed entry `{e}` (want `op Ordering`)",
                        p.name, r.role
                    ));
                }
            }
            if let Some(partner) = &r.pairs {
                if !p.rules.iter().any(|o| &o.role == partner) {
                    return Err(format!(
                        "protocol `{}` role `{}`: pairs names unknown role `{partner}`",
                        p.name, r.role
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Removes a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str, lineno: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("line {lineno}: expected quoted string, got `{v}`"))
    }
}

fn parse_bool(v: &str, lineno: usize) -> Result<bool, String> {
    match v.trim() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("line {lineno}: expected bool, got `{other}`")),
    }
}

fn parse_string_array(v: &str, lineno: usize) -> Result<Vec<String>, String> {
    let v = v.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return Err(format!("line {lineno}: expected array, got `{v}`"));
    }
    let inner = &v[1..v.len() - 1];
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

/// Splits on commas outside string quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut in_str = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# The seqlock ring.
[[protocol]]
name = "seqlock-ring"
doc  = "odd/even sequence lock around ring slots"

[[protocol.rule]]
role      = "writer"
file      = "crates/obs/src/ring.rs"
fn        = "record"
sequence  = ["store Relaxed", "fence Release", "store Relaxed", "store Release"]

[[protocol.rule]]
role      = "reader"
file      = "crates/obs/src/ring.rs"
fn        = "snapshot"
orderings = ["load Acquire", "load Relaxed", "fence Acquire"]
pairs     = "writer"

[[protocol]]
name = "counters"

[[protocol.rule]]
role       = "count"
file       = "crates/obs/src/metrics.rs"
fn         = "*"
relaxed_ok = true
"#;

    #[test]
    fn parses_protocols_rules_and_values() {
        let m = parse(SAMPLE).unwrap();
        assert_eq!(m.protocols.len(), 2);
        let ring = &m.protocols[0];
        assert_eq!(ring.name, "seqlock-ring");
        assert_eq!(ring.rules.len(), 2);
        assert_eq!(ring.rules[0].sequence.len(), 4);
        assert_eq!(ring.rules[1].pairs.as_deref(), Some("writer"));
        assert!(ring.rules[1].has_acquire());
        assert!(!ring.rules[0].has_acquire());
        assert!(m.protocols[1].rules[0].relaxed_ok);
        assert_eq!(m.protocols[1].rules[0].func, "*");
    }

    #[test]
    fn unknown_keys_and_malformed_entries_are_errors() {
        assert!(parse("[[protocol]]\nname = \"x\"\nbogus = \"y\"\n").is_err());
        assert!(parse("stray = \"x\"\n").is_err());
        let bad_entry = "[[protocol]]\nname = \"x\"\n[[protocol.rule]]\nrole = \"r\"\nfile = \"f\"\nfn = \"g\"\norderings = [\"warble Relaxed\"]\n";
        assert!(parse(bad_entry).is_err());
    }

    #[test]
    fn pairs_must_name_an_existing_role() {
        let src = "[[protocol]]\nname = \"x\"\n[[protocol.rule]]\nrole = \"r\"\nfile = \"f\"\nfn = \"g\"\norderings = [\"load Acquire\"]\npairs = \"ghost\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn relaxed_ok_excludes_orderings() {
        let src = "[[protocol]]\nname = \"x\"\n[[protocol.rule]]\nrole = \"r\"\nfile = \"f\"\nfn = \"g\"\nrelaxed_ok = true\norderings = [\"load Relaxed\"]\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn comments_and_wildcard_ops_parse() {
        let src = "[[protocol]]\nname = \"x\" # trailing\n[[protocol.rule]]\nrole = \"r\"\nfile = \"f\"\nfn = \"g\"\norderings = [\"* SeqCst\"]\n";
        let m = parse(src).unwrap();
        assert_eq!(m.protocols[0].rules[0].orderings[0], "* SeqCst");
    }
}
