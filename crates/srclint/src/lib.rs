//! emx-srclint — static analysis of the workspace's concurrency
//! surface.
//!
//! The repo's execution-model infrastructure (shared counters, the
//! seqlock event ring, the work-stealing pool, the Block-STM
//! scheduler) is exactly where the last two review-fix commits found
//! memory-ordering bugs. This crate turns that review into a standing
//! gate: a hand-rolled lexer ([`lex`]) feeds an extractor
//! ([`extract`]) that models every atomic operation and `unsafe`
//! occurrence in the workspace source, and a checker ([`check`])
//! verifies the model against the declared memory-protocol manifest
//! `docs/protocols.toml` ([`manifest`]). Findings use the emx-analyze
//! [`Violation`](emx_analyze::report::Violation) vocabulary and
//! serialize to the same JSON report shape CI already consumes.
//!
//! The pass itself is guarded the same way emx-analyze is: a mutation
//! self-test ([`selftest`]) re-introduces the exact bug classes the
//! reviews caught (the fence-less seqlock writer from PR 6, a
//! Relaxed-weakened done-protocol counter from PR 7) into a scratch
//! copy of the source and fails if the pass does not flag them.

#![warn(missing_docs)]

pub mod check;
pub mod extract;
pub mod lex;
pub mod manifest;
pub mod selftest;

use emx_analyze::report::AnalysisReport;
use emx_obs::Json;
use std::path::Path;

/// Repo-relative path of the protocol manifest.
pub const MANIFEST_PATH: &str = "docs/protocols.toml";

/// One full srclint run: the extracted model plus the check verdict.
pub struct Outcome {
    /// Every atomic site and `unsafe` occurrence found.
    pub inventory: extract::Inventory,
    /// The parsed manifest the inventory was checked against.
    pub manifest: manifest::Manifest,
    /// Findings (clean iff the workspace conforms).
    pub report: AnalysisReport,
}

/// Scans the workspace under `root` (the repository root), loads
/// `docs/protocols.toml`, and checks one against the other.
pub fn run(root: &Path) -> Result<Outcome, String> {
    let manifest = manifest::Manifest::load(&root.join(MANIFEST_PATH))?;
    let inventory = extract::scan_workspace(root);
    if inventory.files_scanned == 0 {
        return Err(format!("no Rust sources under {}", root.display()));
    }
    let report = check::check(&inventory, &manifest);
    Ok(Outcome {
        inventory,
        manifest,
        report,
    })
}

impl Outcome {
    /// The machine-readable report: scan statistics, the full site
    /// inventory, and the violation report (CI artifact shape).
    pub fn to_json(&self) -> Json {
        let sites = self
            .inventory
            .sites
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("crate", Json::Str(s.crate_name.clone())),
                    ("file", Json::Str(s.file.clone())),
                    ("line", Json::Num(s.line as f64)),
                    ("type", Json::Str(s.atomic_type.clone())),
                    ("receiver", Json::Str(s.receiver.clone())),
                    ("op", Json::Str(s.op.clone())),
                    ("ordering", Json::Str(s.ordering.clone())),
                    (
                        "ordering2",
                        s.ordering2.clone().map(Json::Str).unwrap_or(Json::Null),
                    ),
                    ("fn", Json::Str(s.func.clone())),
                    ("test", Json::Bool(s.in_test)),
                ])
            })
            .collect();
        let unsafes = self
            .inventory
            .unsafes
            .iter()
            .map(|u| {
                Json::obj(vec![
                    ("file", Json::Str(u.file.clone())),
                    ("line", Json::Num(u.line as f64)),
                    ("kind", Json::Str(u.kind.clone())),
                    ("fn", Json::Str(u.func.clone())),
                    ("safety_comment", Json::Bool(u.has_safety)),
                    ("test", Json::Bool(u.in_test)),
                ])
            })
            .collect();
        Json::obj(vec![
            (
                "files_scanned",
                Json::Num(self.inventory.files_scanned as f64),
            ),
            ("atomic_sites", Json::Num(self.inventory.sites.len() as f64)),
            (
                "unsafe_sites",
                Json::Num(self.inventory.unsafes.len() as f64),
            ),
            (
                "protocols",
                Json::Arr(
                    self.manifest
                        .protocols
                        .iter()
                        .map(|p| Json::Str(p.name.clone()))
                        .collect(),
                ),
            ),
            ("sites", Json::Arr(sites)),
            ("unsafe", Json::Arr(unsafes)),
            ("report", self.report.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn workspace_run_is_clean() {
        let outcome = run(&repo_root()).expect("srclint run");
        let msgs: Vec<String> = outcome
            .report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(
            outcome.report.is_clean(),
            "workspace does not conform to docs/protocols.toml:\n{}",
            msgs.join("\n")
        );
    }

    #[test]
    fn json_report_round_trips() {
        let outcome = run(&repo_root()).expect("srclint run");
        let text = outcome.to_json().to_json_string();
        let back = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            back.get("atomic_sites").and_then(Json::as_f64),
            Some(outcome.inventory.sites.len() as f64)
        );
        let sites = back.get("sites").and_then(Json::as_arr).expect("sites");
        assert_eq!(sites.len(), outcome.inventory.sites.len());
    }
}
