//! Acceptance gates of the always-on profiler:
//!
//! 1. the blame decomposition sums to wall clock within 1% for **every**
//!    roster policy on a real Fock build (the invariant the attribution
//!    table rests on);
//! 2. both substrates — real threads and the discrete-event simulator —
//!    emit the same task-event schema for a deterministic policy, so one
//!    analysis pipeline genuinely serves both;
//! 3. the committed `results/BENCH_obs.json` parses, embeds a usable
//!    differential baseline, and (for full-mode stamps) holds the
//!    recording overhead under its stamped ceiling.

use emx_bench::profbench;
use emx_chem::basis::{BasisSet, BasisedMolecule};
use emx_chem::molecule::Molecule;
use emx_chem::screening::ScreenedPairs;
use emx_core::prelude::ParallelFock;
use emx_distsim::prelude::{simulate_policy, SimConfig};
use emx_linalg::Matrix;
use emx_obs::{Attribution, EventKind, MetricsRegistry, ProfEvent, RingSet};
use emx_runtime::{Executor, PolicyKind, RuntimeObs};
use std::sync::Arc;

/// Gate 1: on every policy of the full roster, the per-worker
/// compute/counter/steal/merge/idle decomposition covers each worker's
/// wall time with ≤ 1% error, and every task is attributed exactly once.
#[test]
fn full_roster_attribution_sums_to_wall_within_one_percent() {
    let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::Sto3g);
    let pairs = ScreenedPairs::build(&bm, 1e-12);
    let pf = ParallelFock::new(&bm, &pairs, 1e-10, 4);
    let density = Matrix::from_fn(bm.nbf, bm.nbf, |i, j| {
        0.3 / (1.0 + (i as f64 - j as f64).abs())
    });
    let workers = 2;

    for (label, kind) in PolicyKind::full_roster(&pf.estimated_costs(), workers, 4) {
        let w = if matches!(kind, PolicyKind::Serial) {
            1
        } else {
            workers
        };
        // Warm-up, then the profiled build the invariant is checked on.
        pf.execute(&density, &Executor::new(w, kind.clone()));
        let (_, report, profile) = pf.execute_profiled(&density, w, kind, 1 << 12);
        assert_eq!(report.total_tasks_run(), pf.ntasks(), "{label}");

        let a = &profile.attribution;
        assert_eq!(a.workers.len(), w, "{label}: one blame row per worker");
        let tasks: u64 = a.workers.iter().map(|b| b.tasks).sum();
        assert_eq!(
            tasks as usize,
            pf.ntasks(),
            "{label}: every task attributed"
        );
        assert!(
            a.max_sum_error() < 0.01,
            "{label}: decomposition misses wall by {:.4} (> 1%)",
            a.max_sum_error()
        );
        let cp = a.critical_path_fraction();
        assert!(
            cp > 0.0 && cp <= 1.0 + 1e-9,
            "{label}: critical path fraction {cp} out of range"
        );
    }
}

/// The `(kind, arg)` task-event stream of one worker, dropping
/// timestamps (real vs virtual time differ; the schema must not).
fn task_schema(events: &[ProfEvent]) -> Vec<(EventKind, u64)> {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskStart | EventKind::TaskEnd))
        .map(|e| (e.kind, e.arg))
        .collect()
}

/// Gate 2: for a deterministic policy (static block partition) the
/// thread runtime's rings and the simulator's virtual-time emission
/// produce identical per-worker `(kind, arg)` task-event sequences.
#[test]
fn thread_and_simulator_task_event_schemas_agree_for_static_block() {
    const NTASKS: usize = 24;
    const WORKERS: usize = 3;
    let kind = PolicyKind::StaticBlock;

    // Real threads, rings attached.
    let rings = RingSet::new(WORKERS, 256);
    let obs = RuntimeObs::new(Arc::new(MetricsRegistry::new())).with_rings(rings.clone());
    let ex = Executor::new(WORKERS, kind.clone()).with_obs(obs);
    let (_, report) = ex.run(NTASKS, |_| 0u64, |i, acc| *acc += i as u64);
    assert_eq!(report.total_tasks_run(), NTASKS);
    let thread_events = rings.events_per_worker();
    assert_eq!(rings.total_overwritten(), 0);

    // Simulator, same policy over uniform costs, events on.
    let costs = vec![1.0e-6; NTASKS];
    let mut cfg = SimConfig::new(WORKERS);
    cfg.events = true;
    let sim = simulate_policy(&costs, &kind, &cfg);
    assert_eq!(sim.events.len(), WORKERS);

    for (w, worker_events) in thread_events.iter().enumerate() {
        let threads = task_schema(worker_events);
        let simulated = task_schema(&sim.events[w]);
        assert!(!threads.is_empty(), "worker {w} ran no tasks");
        assert_eq!(
            threads, simulated,
            "worker {w}: substrates disagree on the task-event schema"
        );
    }

    // And both substrates' streams flow through the one attribution
    // pipeline unchanged.
    let wall = thread_events
        .iter()
        .flatten()
        .map(|e| e.t_ns)
        .max()
        .unwrap_or(1)
        .max(1);
    let a = Attribution::build("threads", wall, &thread_events);
    let b = Attribution::build("sim", (sim.makespan * 1e9).round() as u64, &sim.events);
    let a_tasks: u64 = a.workers.iter().map(|w| w.tasks).sum();
    let b_tasks: u64 = b.workers.iter().map(|w| w.tasks).sum();
    assert_eq!(a_tasks, NTASKS as u64);
    assert_eq!(b_tasks, NTASKS as u64);
}

/// Gate 3: the committed results stamp parses, carries the differential
/// baseline, and a full-mode stamp respects its own overhead ceiling.
#[test]
fn committed_bench_obs_stamp_is_within_its_ceiling() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_obs.json");
    let text = std::fs::read_to_string(path).expect("results/BENCH_obs.json is committed");
    let v = emx_obs::Json::parse(&text).expect("stamp parses");

    assert_eq!(
        v.get("schema_version").and_then(|s| s.as_f64()),
        Some(emx_obs::SCHEMA_VERSION as f64)
    );
    assert_eq!(
        v.get("experiment").and_then(|e| e.as_str()),
        Some("profile")
    );
    let overhead = v
        .get("recording_overhead_frac")
        .and_then(|o| o.as_f64())
        .expect("overhead stamped");
    let ceiling = v
        .get("overhead_ceiling_frac")
        .and_then(|c| c.as_f64())
        .expect("ceiling stamped");
    assert_eq!(ceiling, profbench::OVERHEAD_CEILING_FRAC);

    // Smoke stamps (CI re-runs on noisy shared runners) are exempt from
    // the ceiling; the committed stamp is expected to be full-mode.
    let smoke = matches!(v.get("smoke"), Some(emx_obs::Json::Bool(true)));
    if !smoke {
        assert!(
            overhead <= ceiling,
            "stamped recording overhead {overhead:.4} exceeds ceiling {ceiling:.2}"
        );
    }

    // The embedded attribution is the differential baseline future runs
    // compare against — it must round-trip.
    let a = profbench::baseline_attribution(path).expect("baseline attribution embedded");
    assert!(!a.workers.is_empty());
    assert!(
        a.max_sum_error() < 0.01,
        "stamped baseline violates the sums-to-wall invariant"
    );
}
