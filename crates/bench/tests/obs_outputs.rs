//! Shape tests for the `obs` experiment's exports: the Chrome trace
//! JSON must be Perfetto-loadable (valid JSON, metadata tracks,
//! monotonic slice timestamps) and the JSONL metrics snapshot must be
//! stamped, parseable line by line, and cover the study's headline
//! observables.

use emx_bench::capture_observability;
use emx_obs::{Json, SCHEMA_VERSION};

fn parsed_lines(jsonl: &str) -> Vec<Json> {
    jsonl
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e:?}")))
        .collect()
}

#[test]
fn metrics_jsonl_is_stamped_and_complete() {
    let capture = capture_observability("obs");
    let lines = parsed_lines(&capture.metrics_jsonl);
    assert!(
        lines.len() > 10,
        "expected a rich snapshot, got {}",
        lines.len()
    );

    // Meta header: first line, exactly once.
    let head = &lines[0];
    assert_eq!(head.get("record").unwrap().as_str(), Some("meta"));
    assert_eq!(
        head.get("schema_version").unwrap().as_f64(),
        Some(SCHEMA_VERSION as f64)
    );
    assert_eq!(head.get("experiment").unwrap().as_str(), Some("obs"));
    assert!(head.get("git").unwrap().as_str().is_some());
    let metas = lines
        .iter()
        .filter(|l| l.get("record").and_then(|r| r.as_str()) == Some("meta"))
        .count();
    assert_eq!(metas, 1);

    // Headline observables, each with the right kind.
    let kind_of = |name: &str| -> String {
        lines
            .iter()
            .find(|l| l.get("name").and_then(|n| n.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("missing metric {name}"))
            .get("kind")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    for gauge in [
        "exec.ws.utilization",
        "exec.ws.busy_imbalance",
        "sim.ws.utilization",
    ] {
        assert_eq!(kind_of(gauge), "gauge", "{gauge}");
    }
    for counter in [
        "runtime.steal_attempts",
        "runtime.steals",
        "runtime.counter_fetches",
        "distsim.nxtval_fetches",
    ] {
        assert_eq!(kind_of(counter), "counter", "{counter}");
    }
    for hist in [
        "runtime.steal_latency",
        "runtime.counter_fetch_latency",
        "runtime.task_duration",
        "distsim.nxtval_fetch_latency",
        "chem.quartets_per_task",
    ] {
        assert_eq!(kind_of(hist), "histogram", "{hist}");
    }

    // SCF phase records: one per iteration, with all phase fields.
    let scf_iters: Vec<&Json> = lines
        .iter()
        .filter(|l| l.get("record").and_then(|r| r.as_str()) == Some("scf_iter"))
        .collect();
    assert_eq!(scf_iters.len(), capture.scf_iterations);
    for (i, rec) in scf_iters.iter().enumerate() {
        assert_eq!(rec.get("iter").unwrap().as_f64(), Some(i as f64));
        for field in ["fock_ms", "diis_ms", "diag_ms", "total_ms"] {
            assert!(
                rec.get(field).unwrap().as_f64().unwrap() >= 0.0,
                "iteration {i} field {field}"
            );
        }
    }
}

#[test]
fn chrome_traces_are_perfetto_loadable() {
    let capture = capture_observability("obs");
    let stems: Vec<&str> = capture.traces.iter().map(|(s, _)| s.as_str()).collect();
    assert!(stems.contains(&"exec_ws"), "missing exec_ws in {stems:?}");
    assert!(stems.contains(&"sim_ws"), "missing sim_ws in {stems:?}");

    for (stem, json) in &capture.traces {
        let v = Json::parse(json).unwrap_or_else(|e| panic!("{stem}: invalid JSON: {e:?}"));
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty(), "{stem}: empty trace");

        // Exactly one process_name, one thread_name per worker track.
        let name_count = |n: &str| {
            events
                .iter()
                .filter(|e| e.get("name").and_then(|x| x.as_str()) == Some(n))
                .count()
        };
        assert_eq!(name_count("process_name"), 1, "{stem}");
        let tracks = name_count("thread_name");
        assert!(
            tracks >= 2,
            "{stem}: expected multiple worker tracks, got {tracks}"
        );

        // Complete events: monotonic non-decreasing ts, non-negative
        // dur, every tid a named track.
        let mut last_ts = f64::NEG_INFINITY;
        let mut slices = 0;
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            slices += 1;
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            assert!(
                ts >= last_ts,
                "{stem}: ts went backwards ({ts} < {last_ts})"
            );
            last_ts = ts;
            assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0, "{stem}");
        }
        assert!(slices > 0, "{stem}: no slices");
    }
}
