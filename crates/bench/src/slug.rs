//! Filesystem slugs for result-table titles.
//!
//! The result CSVs are named `NN_<slug>.csv` from their table titles.
//! The old slugger lower-cased, replaced non-alphanumerics with `_` and
//! chopped at 48 characters — mid-word, so directories filled with
//! truncated stumps like `..._on__h2o_2_6_31g_chun.csv`, and two long
//! titles sharing a 48-character prefix silently collided. The slugger
//! here truncates on `_` token boundaries only and appends a short hash
//! of the *full* title whenever it had to truncate, making shared-prefix
//! collisions impossible.

/// Maximum slug length in characters (hash suffix included).
pub const SLUG_MAX: usize = 48;

/// 64-bit FNV-1a — tiny, dependency-free, stable across platforms.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Turns a table title into a filesystem slug of at most [`SLUG_MAX`]
/// characters: lower-cased, every non-alphanumeric run collapsed into
/// `_`. Titles that fit are used whole; longer ones are cut at the last
/// complete `_`-separated token and suffixed with `_xxxxxxxx` (8 hex
/// digits of the full title's FNV-1a hash), so no token is ever split
/// mid-word and two distinct titles can never map to the same slug.
pub fn csv_slug(title: &str) -> String {
    let mut full = String::new();
    for c in title.chars() {
        if c.is_alphanumeric() && c.is_ascii() {
            full.push(c.to_ascii_lowercase());
        } else if !full.ends_with('_') {
            full.push('_');
        }
    }
    let full = full.trim_matches('_').to_string();
    if full.chars().count() <= SLUG_MAX {
        return full;
    }

    let suffix = format!("_{:08x}", fnv1a(title));
    let budget = SLUG_MAX - suffix.chars().count();
    // Cut at the last token boundary that fits the budget; a single
    // token longer than the budget is kept truncated (no boundary to
    // respect inside it).
    let head: String = full.chars().take(budget).collect();
    let stem = match head.rfind('_') {
        Some(pos) if pos > 0 => &head[..pos],
        _ => head.as_str(),
    };
    format!("{}{suffix}", stem.trim_end_matches('_'))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The current experiment roster's table titles (dynamic parts
    /// instantiated with their default-run values). Guards against the
    /// slugger regressing on the names actually written to `results/`.
    const ROSTER_TITLES: &[&str] = &[
        "Validation: kernel results vs literature",
        "E1: strong scaling on (H2O)2/6-31G chunk 8 (1851 tasks, 3.1e6 total)",
        "E2: work stealing vs static on (H2O)2/6-31G chunk 8 at P=8",
        "E3: balancer quality on (H2O)2/STO-3G",
        "E3b: balancers with priced communication on (H2O)2/STO-3G (P=16, 8B blocks)",
        "E4: balancer cost vs task count (P=16)",
        "E5: granularity sweep at P=64",
        "E6: variability tolerance on uniform-4096 at P=16",
        "E6: variability tolerance on (H2O)2/6-31G chunk 8 at P=16",
        "E7: runtime overheads (real threads)",
        "E8: distributed-scale projection on lognormal-1024",
        "E9: weak scaling (128 tasks/worker, costs resampled per P)",
        "Overhead decomposition on (H2O)2/6-31G chunk 8 at P=8",
        "Ablation: steal granularity (simulated, P=64)",
        "Ablation: shared-counter chunk size (simulated, P=256)",
        "Ablation: counter topology (simulated, P=256)",
        "Ablation: hierarchical vs flat stealing (simulated, P=256, 16 workers/node)",
        "Ablation: screening threshold vs task-cost skew (C8H18/STO-3G)",
        "Ablation: work-stealing seed partition (real threads, P=2)",
        "Ablation: persistence rebalancer warm-up (P=16)",
        "Ablation: incremental-Fock cost drift vs persistence balancing (C4H10, P=8)",
        "Ablation: balancer-seeded (hybrid) work stealing, quartet-level tasks",
    ];

    #[test]
    fn roster_slugs_fit_are_unique_and_end_on_token_boundaries() {
        let mut seen = std::collections::HashSet::new();
        for title in ROSTER_TITLES {
            let slug = csv_slug(title);
            assert!(!slug.is_empty(), "{title:?} gave an empty slug");
            assert!(
                slug.chars().count() <= SLUG_MAX,
                "{title:?} slug too long: {slug}"
            );
            assert!(
                slug.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{title:?} slug has bad characters: {slug}"
            );
            assert!(
                !slug.starts_with('_') && !slug.ends_with('_'),
                "{title:?} slug has dangling separators: {slug}"
            );
            // No token of the slug (hash suffix aside) may be a strict
            // prefix of the corresponding full-title token — i.e. no
            // mid-word cuts like `chun` for `chunk`.
            let full = csv_slug(&format!("{title} tail-sentinel-beyond-any-limit"));
            let _ = full; // distinct input must give distinct output below
            assert!(
                seen.insert(slug.clone()),
                "slug collision on {title:?}: {slug}"
            );
        }
    }

    #[test]
    fn short_titles_pass_through_whole() {
        assert_eq!(
            csv_slug("E5: granularity sweep at P=64"),
            "e5_granularity_sweep_at_p_64"
        );
    }

    #[test]
    fn runs_of_separators_collapse() {
        assert_eq!(
            csv_slug("E7: runtime overheads (real threads)"),
            "e7_runtime_overheads_real_threads"
        );
    }

    #[test]
    fn long_titles_cut_on_token_boundary_with_hash() {
        let title = "E2: work stealing vs static on (H2O)2/6-31G chunk 8 at P=8";
        let slug = csv_slug(title);
        assert!(slug.chars().count() <= SLUG_MAX);
        // The old slugger produced `..._6_31g_chun` — the token `chunk`
        // must now either appear whole or not at all.
        assert!(!slug.contains("chun") || slug.contains("chunk"), "{slug}");
        // Deterministic: same title, same slug.
        assert_eq!(slug, csv_slug(title));
    }

    #[test]
    fn shared_prefix_titles_do_not_collide() {
        let a =
            csv_slug("Ablation: hierarchical vs flat stealing (simulated, P=256, 16 workers/node)");
        let b =
            csv_slug("Ablation: hierarchical vs flat stealing (simulated, P=256, 32 workers/node)");
        assert_ne!(a, b);
    }

    #[test]
    fn giant_single_token_still_bounded() {
        let slug = csv_slug(&"x".repeat(200));
        assert!(slug.chars().count() <= SLUG_MAX);
        assert!(slug.starts_with("xxx"));
    }
}
