//! The `obs` experiment: one instrumented capture of the whole stack.
//!
//! Runs a small but real slice of the study with observability attached
//! — a traced work-stealing Fock build, a counter-model build, a full
//! SCF with per-iteration phase timings, a traced discrete-event
//! simulation and an observed distributed SCF — and renders the results
//! as Chrome-trace JSON files plus one stamped JSONL metrics snapshot.
//! The `reproduce` binary writes these under `--trace-out` /
//! `--metrics-out`; the integration tests assert their shape.

use emx_chem::basis::{BasisSet, BasisedMolecule};
use emx_chem::molecule::Molecule;
use emx_chem::scf::ScfConfig;
use emx_core::prelude::*;
use emx_distsim::machine::MachineModel;
use emx_distsim::sim::{simulate, SimConfig, SimModel};
use emx_obs::{git_describe_string, metrics_to_jsonl, Json, MetricsRegistry, RunMeta};
use emx_runtime::{
    publish_report_gauges, report_to_chrome, Executor, PolicyKind, RuntimeObs, StealConfig,
};
use std::sync::Arc;

/// Everything the `obs` experiment produces, ready to write to disk.
#[derive(Debug)]
pub struct ObsCapture {
    /// `(file stem, Chrome trace-event JSON)` pairs — each loads
    /// directly into Perfetto / `chrome://tracing`.
    pub traces: Vec<(String, String)>,
    /// Stamped JSONL metrics snapshot (meta line first).
    pub metrics_jsonl: String,
    /// SCF iterations captured (for reporting).
    pub scf_iterations: usize,
}

/// Runs the instrumented capture. Deterministic inputs; wall-clock
/// durations inside naturally vary run to run.
pub fn capture_observability(experiment_id: &str) -> ObsCapture {
    let metrics = Arc::new(MetricsRegistry::new());
    let obs = RuntimeObs::new(metrics.clone());
    let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::Sto3g);
    let cfg = ScfConfig::default();
    let mut traces: Vec<(String, String)> = Vec::new();

    // 1. One traced work-stealing Fock build: steal metrics + a
    //    per-worker timeline.
    {
        let pairs = ScreenedPairs::build(&bm, cfg.tau * 1e-2);
        let pf = ParallelFock::new(&bm, &pairs, cfg.tau, 2);
        let density = initial_density(&bm);
        let mut ex = Executor::new(4, PolicyKind::WorkStealing(StealConfig::default()))
            .with_obs(obs.clone());
        ex.trace = true;
        let (_, report) = pf.execute(&density, &ex);
        publish_report_gauges(&metrics, "exec.ws", &report);
        let chrome = report_to_chrome(&report, 1, "fock build");
        traces.push(("exec_ws".into(), chrome.to_json_string()));
    }

    // 2. The same build under the shared counter: fetch count/latency.
    {
        let pairs = ScreenedPairs::build(&bm, cfg.tau * 1e-2);
        let pf = ParallelFock::new(&bm, &pairs, cfg.tau, 2);
        let density = initial_density(&bm);
        let ex = Executor::new(4, PolicyKind::DynamicCounter { chunk: 2 }).with_obs(obs.clone());
        let (_, report) = pf.execute(&density, &ex);
        publish_report_gauges(&metrics, "exec.counter", &report);
    }

    // 3. Full SCF with per-iteration phase timings → `scf_iter` records.
    let mut extra: Vec<Json> = Vec::new();
    let scf_iterations;
    {
        let ex = Executor::new(2, PolicyKind::WorkStealing(StealConfig::default()))
            .with_obs(obs.clone());
        let (result, _reports) = rhf_parallel(&bm, &cfg, &ex, 3);
        scf_iterations = result.iterations;
        for (i, ph) in result.phase_timings.iter().enumerate() {
            extra.push(Json::obj(vec![
                ("record", Json::Str("scf_iter".into())),
                ("iter", Json::Num(i as f64)),
                ("fock_ms", Json::Num(ph.fock.as_secs_f64() * 1e3)),
                ("diis_ms", Json::Num(ph.diis.as_secs_f64() * 1e3)),
                ("diag_ms", Json::Num(ph.diag.as_secs_f64() * 1e3)),
                ("total_ms", Json::Num(ph.total.as_secs_f64() * 1e3)),
            ]));
        }
    }

    // 4. A traced discrete-event simulation at P=8 — the scaled view.
    {
        let costs: Vec<f64> = (1..=256).map(|i| (i % 17 + 1) as f64 * 1e-6).collect();
        let sim_cfg = SimConfig {
            trace: true,
            machine: MachineModel::default(),
            ..SimConfig::new(8)
        };
        let r = simulate(
            &costs,
            &SimModel::WorkStealing { steal_half: true },
            &sim_cfg,
        );
        publish_sim_metrics(&metrics, "sim.ws", &r);
        let chrome = sim_report_to_chrome(&r, 2, "sim work-stealing P=8");
        traces.push(("sim_ws".into(), chrome.to_json_string()));
    }

    // 5. Observed distributed SCF: NXTVAL fetch latency + GA traffic.
    {
        let h2 = BasisedMolecule::assign(&Molecule::h2(1.4), BasisSet::Sto3g);
        let (_, _) = rhf_distributed_observed(
            &h2,
            &cfg,
            2,
            DistScheduler::NxtVal { chunk: 1 },
            Some(&metrics),
        );
    }

    let meta = RunMeta::new(experiment_id, git_describe_string());
    let metrics_jsonl = metrics_to_jsonl(&meta, &metrics.snapshot(), &extra);
    ObsCapture {
        traces,
        metrics_jsonl,
        scf_iterations,
    }
}

/// A symmetric, deterministic starter density for standalone Fock
/// builds (SCF runs derive their own).
fn initial_density(bm: &BasisedMolecule) -> emx_linalg::Matrix {
    let mut d = emx_linalg::Matrix::from_fn(bm.nbf, bm.nbf, |i, j| {
        0.2 / (1.0 + (i as f64 - j as f64).abs())
    });
    d.symmetrize();
    d
}
