//! `reproduce distsim` measurement: event-core throughput of the
//! discrete-event simulator at cluster scale, stamped into
//! `results/BENCH_distsim.json`.
//!
//! The full policy roster runs at 10⁴–10⁵ simulated ranks twice per
//! scale — once on the production calendar-queue event core and once on
//! the retained binary-heap oracle ([`emx_distsim::QueueKind`]). Both
//! backends pop the same `(time, seq)` total order, so every pair is
//! asserted **bitwise identical** before its walls count; the stamped
//! figure of merit is simulated events per second of wall clock
//! (events = executed tasks + counter fetches + steal attempts).
//!
//! The CI floor is deliberately host-independent: rather than pinning
//! an absolute events/sec (which varies with hardware), the gate is the
//! *ratio* of calendar throughput to heap throughput on the same host —
//! the calendar core must deliver at least [`DISTSIM_FLOOR_RATIO`] of
//! the oracle's rate in aggregate. `EMX_DISTSIM_SMOKE=1` shrinks the
//! rank sweep for CI.

use emx_distsim::machine::MachineModel;
use emx_distsim::prelude::*;
use emx_distsim::sim::SimModel;
use std::time::Instant;

/// True when `EMX_DISTSIM_SMOKE` is set — CI's fast mode (10³/10⁴
/// ranks, single sample).
pub fn distsim_smoke() -> bool {
    std::env::var("EMX_DISTSIM_SMOKE").is_ok()
}

/// Aggregate calendar throughput must stay within this factor of the
/// heap oracle's (host-independent: both run on the same machine in the
/// same process). At 10⁴⁺ ranks the calendar core is *faster* than the
/// heap; the floor only guards against a regression that makes the
/// production backend pathologically slower than its oracle.
pub const DISTSIM_FLOOR_RATIO: f64 = 0.5;

/// One (model, rank count) cell of the sweep.
pub struct DistsimBenchRow {
    /// Scheduling model name ([`SimModel::name`]).
    pub model: &'static str,
    /// Simulated ranks (workers).
    pub ranks: usize,
    /// Tasks in the workload.
    pub ntasks: usize,
    /// Simulated events processed: executed tasks + counter fetches +
    /// steal attempts (identical across backends by the oracle check).
    pub events: u64,
    /// Best-of-`samples` wall on the calendar-queue backend.
    pub calendar_wall_secs: f64,
    /// Best-of-`samples` wall on the binary-heap oracle.
    pub heap_wall_secs: f64,
    /// Simulated makespan (s) — identical across backends.
    pub makespan: f64,
}

impl DistsimBenchRow {
    /// Events per second of wall clock on the calendar backend.
    pub fn calendar_events_per_sec(&self) -> f64 {
        if self.calendar_wall_secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.calendar_wall_secs
        }
    }

    /// Events per second of wall clock on the heap oracle.
    pub fn heap_events_per_sec(&self) -> f64 {
        if self.heap_wall_secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.heap_wall_secs
        }
    }

    /// Calendar wall speedup over the heap oracle (>1 = faster).
    pub fn speedup_vs_heap(&self) -> f64 {
        if self.calendar_wall_secs <= 0.0 {
            0.0
        } else {
            self.heap_wall_secs / self.calendar_wall_secs
        }
    }
}

/// Everything the `reproduce distsim` arm reports and stamps.
pub struct DistsimBenchReport {
    /// Timed runs per cell (walls are the minimum).
    pub samples: usize,
    /// One row per (model, rank count).
    pub rows: Vec<DistsimBenchRow>,
}

impl DistsimBenchReport {
    /// Aggregate calendar throughput: total events over total wall.
    pub fn calendar_rate(&self) -> f64 {
        let (e, w) = self.rows.iter().fold((0u64, 0.0), |(e, w), r| {
            (e + r.events, w + r.calendar_wall_secs)
        });
        if w <= 0.0 {
            0.0
        } else {
            e as f64 / w
        }
    }

    /// Aggregate heap-oracle throughput: total events over total wall.
    pub fn heap_rate(&self) -> f64 {
        let (e, w) = self.rows.iter().fold((0u64, 0.0), |(e, w), r| {
            (e + r.events, w + r.heap_wall_secs)
        });
        if w <= 0.0 {
            0.0
        } else {
            e as f64 / w
        }
    }

    /// The CI gate: aggregate calendar rate over aggregate heap rate.
    pub fn ratio_vs_heap(&self) -> f64 {
        let h = self.heap_rate();
        if h <= 0.0 {
            0.0
        } else {
            self.calendar_rate() / h
        }
    }
}

/// The full scheduling-model roster at `n` tasks on `p` ranks — the
/// same nine models the oracle-equivalence suite pins.
fn roster(n: usize, p: usize) -> Vec<SimModel> {
    let owners: Vec<u32> = (0..n).map(|i| (i * p / n.max(1)) as u32).collect();
    vec![
        SimModel::Static(owners.clone()),
        SimModel::Counter { chunk: 4 },
        SimModel::Guided { min_chunk: 2 },
        SimModel::GroupCounters {
            groups: 8,
            chunk: 4,
        },
        SimModel::HierCounters {
            chunk: 4,
            node_size: 32,
            parent_chunk: 32,
        },
        SimModel::WorkStealing { steal_half: true },
        SimModel::SeededStealing {
            owners,
            steal_half: true,
        },
        SimModel::HierarchicalStealing {
            steal_half: true,
            node_size: 32,
            remote_factor: 8.0,
        },
        SimModel::TopologyStealing { steal_half: true },
    ]
}

/// Measures the roster at each rank count in `rank_counts`, with
/// `tasks_per_rank` tasks per rank and min-of-`samples` walls. Each
/// cell runs on both backends and the pair is asserted bitwise
/// identical (makespan ULPs, per-worker task counts, all counters)
/// before its walls are recorded.
pub fn distsim_measure_at(
    rank_counts: &[usize],
    tasks_per_rank: usize,
    samples: usize,
) -> DistsimBenchReport {
    let mut rows = Vec::new();
    for &p in rank_counts {
        let n = p * tasks_per_rank;
        // Deterministic skewed costs — same shape as the scale tests.
        let costs: Vec<f64> = (0..n).map(|i| ((i * 13) % 7 + 1) as f64 * 1e-6).collect();
        for model in roster(n, p) {
            let mut cfg = SimConfig::new(p);
            cfg.machine = MachineModel::with_topology();
            let run = |queue: QueueKind| -> (f64, SimReport) {
                let mut qcfg = cfg.clone();
                qcfg.queue = queue;
                let mut best = f64::INFINITY;
                let mut last = simulate(&costs, &model, &qcfg);
                for _ in 0..samples {
                    let t0 = Instant::now();
                    last = simulate(&costs, &model, &qcfg);
                    best = best.min(t0.elapsed().as_secs_f64());
                }
                (best, last)
            };
            let (calendar_wall_secs, cal) = run(QueueKind::Calendar);
            let (heap_wall_secs, heap) = run(QueueKind::Heap);
            assert_eq!(
                cal.makespan.to_bits(),
                heap.makespan.to_bits(),
                "{} p={p}: calendar/heap makespan diverged",
                model.name()
            );
            assert_eq!(
                cal.tasks,
                heap.tasks,
                "{} p={p}: calendar/heap task counts diverged",
                model.name()
            );
            assert_eq!(
                (cal.counter_fetches, cal.steals, cal.steal_attempts),
                (heap.counter_fetches, heap.steals, heap.steal_attempts),
                "{} p={p}: calendar/heap counters diverged",
                model.name()
            );
            let events =
                cal.tasks.iter().sum::<usize>() as u64 + cal.counter_fetches + cal.steal_attempts;
            rows.push(DistsimBenchRow {
                model: model.name(),
                ranks: p,
                ntasks: n,
                events,
                calendar_wall_secs,
                heap_wall_secs,
                makespan: cal.makespan,
            });
        }
    }
    DistsimBenchReport { samples, rows }
}

/// Runs the sweep and collects the report. Full mode: 10⁴ and 10⁵
/// ranks, 3 samples. Smoke: 10³ and 10⁴ ranks, single sample.
pub fn distsim_measure(smoke: bool) -> DistsimBenchReport {
    if smoke {
        distsim_measure_at(&[1_000, 10_000], 2, 1)
    } else {
        distsim_measure_at(&[10_000, 100_000], 2, 3)
    }
}

/// Renders the stamped `results/BENCH_distsim.json`: schema + sweep
/// identity, one row per (model, ranks) with walls and events/sec on
/// both backends, and the aggregate rates behind the CI floor ratio.
pub fn bench_distsim_json(report: &DistsimBenchReport, git: &str, smoke: bool) -> String {
    let mut rows = String::new();
    for (i, r) in report.rows.iter().enumerate() {
        let sep = if i + 1 < report.rows.len() { "," } else { "" };
        rows.push_str(&format!(
            "    {{\"model\": \"{}\", \"ranks\": {}, \"tasks\": {}, \
             \"events\": {}, \"makespan_secs\": {:.9}, \
             \"calendar_wall_secs\": {:.6}, \"calendar_events_per_sec\": {:.1}, \
             \"heap_wall_secs\": {:.6}, \"heap_events_per_sec\": {:.1}, \
             \"speedup_vs_heap\": {:.4}}}{sep}\n",
            r.model,
            r.ranks,
            r.ntasks,
            r.events,
            r.makespan,
            r.calendar_wall_secs,
            r.calendar_events_per_sec(),
            r.heap_wall_secs,
            r.heap_events_per_sec(),
            r.speedup_vs_heap(),
        ));
    }
    format!(
        "{{\n  \"schema_version\": {},\n  \"experiment\": \"distsim\",\n  \
         \"git\": \"{}\",\n  \"smoke\": {},\n  \"samples\": {},\n  \
         \"calendar_events_per_sec\": {:.1},\n  \"heap_events_per_sec\": {:.1},\n  \
         \"ratio_vs_heap\": {:.4},\n  \"floor_ratio\": {:.2},\n  \
         \"rows\": [\n{}  ]\n}}\n",
        emx_obs::SCHEMA_VERSION,
        git,
        smoke,
        report.samples,
        report.calendar_rate(),
        report.heap_rate(),
        report.ratio_vs_heap(),
        DISTSIM_FLOOR_RATIO,
        rows
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_the_full_roster_on_both_backends() {
        // Unit-test sizes (debug builds); the reproduce arm runs the
        // real 10⁴–10⁵ sweep in release.
        let report = distsim_measure_at(&[64, 256], 2, 1);
        assert_eq!(report.rows.len(), 2 * 9, "roster × rank counts");
        for r in &report.rows {
            assert!(r.events >= r.ntasks as u64, "{}: event floor", r.model);
            assert!(r.calendar_wall_secs > 0.0 && r.heap_wall_secs > 0.0);
            assert!(r.makespan > 0.0);
        }
        assert!(report.calendar_rate() > 0.0);
        assert!(report.heap_rate() > 0.0);
        assert!(report.ratio_vs_heap() > 0.0);
    }

    #[test]
    fn bench_distsim_json_parses_and_carries_the_sweep() {
        let report = distsim_measure_at(&[64], 2, 1);
        let json = bench_distsim_json(&report, "test", true);
        let v = emx_obs::Json::parse(&json).expect("stamped JSON parses");
        assert_eq!(
            v.get("experiment").and_then(|e| e.as_str()),
            Some("distsim")
        );
        assert!(v.get("ratio_vs_heap").and_then(|r| r.as_f64()).is_some());
        assert_eq!(
            v.get("floor_ratio").and_then(|f| f.as_f64()),
            Some(DISTSIM_FLOOR_RATIO)
        );
        let rows = v.get("rows").and_then(|r| r.as_arr()).expect("rows");
        assert_eq!(rows.len(), report.rows.len());
        for (row, r) in rows.iter().zip(&report.rows) {
            assert_eq!(
                row.get("ranks").and_then(|w| w.as_f64()),
                Some(r.ranks as f64)
            );
            assert!(row
                .get("calendar_events_per_sec")
                .and_then(|x| x.as_f64())
                .is_some());
        }
    }
}
