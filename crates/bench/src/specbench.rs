//! `reproduce speculate` measurement: the speculative (Block-STM)
//! incremental SCF against the sequential driver and a work-stealing
//! reference, stamped into `results/BENCH_spec.json`.
//!
//! Three drivers run the *same* ΔD incremental SCF to the same
//! convergence point:
//!
//! * the sequential [`rhf_incremental`] — the replay-equivalence
//!   baseline the speculative commit rule is defined against;
//! * [`rhf_incremental_speculative`] at 1/2/4/8 workers — each
//!   iteration's Fock build as one speculative block with interleaved
//!   epoch-refresh transactions (the conflict generator), so the
//!   stamped abort rate and wasted incarnations come from real
//!   read-set invalidations;
//! * a work-stealing reference that runs the identical chunk plan
//!   under [`Executor`] with [`PolicyKind::WorkStealing`] — the
//!   paper's headline dynamic policy, for the speculation-vs-stealing
//!   column.
//!
//! Walls are min-of-`samples` (paired: every driver measured the same
//! way on the same warmed process), so the stamped speedups compare
//! best-case walls, the standard convention of the repo's other
//! benches. `EMX_SPEC_SMOKE=1` shrinks the workload and worker sweep
//! for CI.

use emx_chem::basis::{BasisSet, BasisedMolecule};
use emx_chem::fock::FockBuilder;
use emx_chem::molecule::Molecule;
use emx_chem::oneint::{core_hamiltonian, overlap};
use emx_chem::scf::{density_from_mos, rhf_incremental, ScfConfig, ScfResult};
use emx_chem::screening::ScreenedPairs;
use emx_chem::specscf::{rhf_incremental_speculative, SpeculativeStats};
use emx_linalg::{jacobi_eigen, symmetric_orthogonalizer, Matrix};
use emx_runtime::{Executor, PolicyKind};
use std::time::Instant;

/// True when `EMX_SPEC_SMOKE` is set — CI's fast mode (H₂O/STO-3G,
/// two worker counts, single sample).
pub fn spec_smoke() -> bool {
    std::env::var("EMX_SPEC_SMOKE").is_ok()
}

/// One worker count's speculative measurement.
pub struct SpecBenchRow {
    /// Workers the speculative blocks ran on.
    pub workers: usize,
    /// Best-of-`samples` wall for the whole speculative SCF.
    pub wall_secs: f64,
    /// Wall of the work-stealing reference at the same worker count.
    pub stealing_wall_secs: f64,
    /// Speculation effort of the measured (best-wall) run.
    pub stats: SpeculativeStats,
    /// Final energy of the speculative run (deterministic — must be
    /// bit-identical across the whole worker sweep).
    pub energy: f64,
}

impl SpecBenchRow {
    /// Committed transactions per second of speculative wall.
    pub fn commits_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.stats.commits as f64 / self.wall_secs
        }
    }
}

/// Everything the `reproduce speculate` arm reports and stamps.
pub struct SpecBenchReport {
    /// Workload molecule label.
    pub molecule: String,
    /// Basis-set label.
    pub basis: String,
    /// Fock transactions per speculative block.
    pub nchunks: usize,
    /// Timed runs per configuration (walls are the minimum).
    pub samples: usize,
    /// SCF iterations to convergence (identical for every driver).
    pub iterations: usize,
    /// Best-of-`samples` wall of the sequential [`rhf_incremental`].
    pub serial_wall_secs: f64,
    /// Final energy of the sequential driver.
    pub serial_energy: f64,
    /// One row per measured worker count.
    pub rows: Vec<SpecBenchRow>,
}

impl SpecBenchReport {
    /// Speedup of the speculative SCF over the sequential driver at
    /// `workers`, or `None` if that worker count was not measured.
    pub fn speedup_vs_serial(&self, workers: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workers == workers)
            .map(|r| self.serial_wall_secs / r.wall_secs)
    }
}

/// The speculate workload: (H₂O)₂/STO-3G (the measured-cost dimer of
/// E3 — big enough that chunk bodies dwarf protocol overhead), or
/// H₂O/STO-3G under smoke.
fn spec_workload(smoke: bool) -> (BasisedMolecule, &'static str, &'static str) {
    if smoke {
        let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::Sto3g);
        (bm, "H2O", "STO-3G")
    } else {
        let bm = BasisedMolecule::assign(&Molecule::water_cluster(2, 5), BasisSet::Sto3g);
        (bm, "(H2O)2", "STO-3G")
    }
}

/// The work-stealing reference: the same incremental SCF with each
/// iteration's Fock build run as `nchunks` contiguous chunk-tasks under
/// [`PolicyKind::WorkStealing`]. Per-worker partials merge in worker
/// order (not transaction order) — the usual reduction of the threaded
/// executor, which is exactly why its energies are only
/// FP-regrouping-close to the serial driver while the speculative
/// commit rule reproduces serial bit-for-bit.
fn rhf_incremental_stealing(
    bm: &BasisedMolecule,
    config: &ScfConfig,
    workers: usize,
    nchunks: usize,
) -> ScfResult {
    let nocc = bm.nelectrons() / 2;
    let nbf = bm.nbf;
    let s = overlap(bm);
    let h = core_hamiltonian(bm);
    let x = symmetric_orthogonalizer(&s).expect("SPD overlap");
    let pairs = ScreenedPairs::build(bm, config.tau * 1e-2);
    let fb = FockBuilder::new(bm, &pairs, config.tau);
    let tasks = fb.tasks(usize::MAX);
    let nchunks = nchunks.clamp(1, tasks.len().max(1));
    let ex = Executor::new(workers, PolicyKind::WorkStealing(Default::default()));

    let mut p = {
        let hp = h.congruence(&x).expect("shapes");
        let e = jacobi_eigen(&hp, 1e-12, 100).expect("eigen");
        density_from_mos(&x.matmul(&e.vectors).expect("shapes"), nocc)
    };
    let enuc = bm.nuclear_repulsion();
    let mut g = Matrix::zeros(nbf, nbf);
    let mut p_prev = Matrix::zeros(nbf, nbf);
    let mut e_old = 0.0;
    let mut history = Vec::new();
    let mut orbital_energies = Vec::new();
    let mut mo_coefficients = Matrix::zeros(nbf, nbf);
    let mut converged = false;
    let mut iterations = 0;
    const REBUILD_EVERY: usize = 8;
    for it in 0..config.max_iter * 2 {
        iterations = it + 1;
        let rebuild = it % REBUILD_EVERY == 0;
        let delta = p.sub(&p_prev).expect("shapes");
        let dmax = if rebuild {
            Vec::new()
        } else {
            fb.pair_density_max(&delta)
        };
        let (locals, report) = ex.run(
            nchunks,
            |_| (Matrix::zeros(nbf, nbf), fb.scratch()),
            |c, local: &mut (Matrix, _)| {
                let begin = c * tasks.len() / nchunks;
                let end = (c + 1) * tasks.len() / nchunks;
                for task in &tasks[begin..end] {
                    if rebuild {
                        fb.execute(task, &p, &mut local.0, &mut local.1);
                    } else {
                        fb.execute_density_screened(
                            task,
                            &delta,
                            &dmax,
                            &mut local.0,
                            &mut local.1,
                        );
                    }
                }
            },
        );
        assert_eq!(report.total_tasks_run(), nchunks);
        if rebuild {
            g.fill_zero();
        }
        for (partial, _) in &locals {
            for (gi, pi) in g.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                *gi += pi;
            }
        }
        p_prev = p.clone();

        let f = h.add(&g).expect("F = H + G");
        let e_elec = 0.5 * p.dot(&h.add(&f).expect("H+F")).expect("trace");
        history.push(e_elec + enuc);
        let fp = f.congruence(&x).expect("shapes");
        let eig = jacobi_eigen(&fp, 1e-12, 100).expect("eigen");
        let c = x.matmul(&eig.vectors).expect("shapes");
        let p_new = density_from_mos(&c, nocc);
        orbital_energies = eig.values.clone();
        mo_coefficients = c;
        let de = (e_elec + enuc - e_old).abs();
        let dp = {
            let n = (nbf * nbf) as f64;
            let mut acc = 0.0;
            for (a, b) in p_new.as_slice().iter().zip(p.as_slice()) {
                acc += (a - b) * (a - b);
            }
            (acc / n).sqrt()
        };
        e_old = e_elec + enuc;
        p = p_new;
        if it > 0 && de < config.e_tol.max(1e-8) && dp < config.d_tol.max(1e-6) {
            converged = true;
            break;
        }
    }
    ScfResult {
        energy: e_old,
        electronic_energy: e_old - enuc,
        nuclear_repulsion: enuc,
        iterations,
        converged,
        orbital_energies,
        density: p,
        mo_coefficients,
        energy_history: history,
        phase_timings: Vec::new(),
    }
}

/// Runs the three drivers and collects the report. Full mode:
/// (H₂O)₂/STO-3G, workers 1/2/4/8, 3 samples, 12-chunk blocks.
/// Smoke: H₂O/STO-3G, workers 1/2, 1 sample, 6-chunk blocks.
pub fn speculate_measure(smoke: bool) -> SpecBenchReport {
    let (bm, molecule, basis) = spec_workload(smoke);
    let cfg = ScfConfig::default();
    let nchunks = if smoke { 6 } else { 12 };
    let samples = if smoke { 1 } else { 3 };
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    // Min-of-samples with one untimed warm-up run first.
    let min_wall = |run: &mut dyn FnMut() -> ScfResult| -> (f64, ScfResult) {
        let mut best = f64::INFINITY;
        let mut last = run();
        for _ in 0..samples {
            let t0 = Instant::now();
            last = run();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, last)
    };

    let (serial_wall_secs, serial) = min_wall(&mut || rhf_incremental(&bm, &cfg).0);
    assert!(serial.converged, "serial incremental SCF must converge");

    let mut rows = Vec::new();
    for &w in worker_counts {
        let mut stats = SpeculativeStats::default();
        let (wall_secs, spec) = min_wall(&mut || {
            let (r, _, s) = rhf_incremental_speculative(&bm, &cfg, w, nchunks);
            stats = s;
            r
        });
        assert!(spec.converged, "speculative SCF must converge (P={w})");
        assert!(
            (spec.energy - serial.energy).abs() < 1e-12,
            "speculative energy {} departs from serial {}",
            spec.energy,
            serial.energy
        );
        let (stealing_wall_secs, steal) =
            min_wall(&mut || rhf_incremental_stealing(&bm, &cfg, w, nchunks));
        assert!(steal.converged, "stealing reference must converge (P={w})");
        rows.push(SpecBenchRow {
            workers: w,
            wall_secs,
            stealing_wall_secs,
            stats,
            energy: spec.energy,
        });
    }
    // The deterministic-commit rule makes the speculative energy a pure
    // function of the inputs: the whole sweep must agree bit-for-bit.
    for pair in rows.windows(2) {
        assert_eq!(
            pair[0].energy.to_bits(),
            pair[1].energy.to_bits(),
            "speculative energy must not depend on worker count"
        );
    }

    SpecBenchReport {
        molecule: molecule.into(),
        basis: basis.into(),
        nchunks,
        samples,
        iterations: serial.iterations,
        serial_wall_secs,
        serial_energy: serial.energy,
        rows,
    }
}

/// Renders the stamped `results/BENCH_spec.json`: schema + workload
/// identity, the serial baseline, and one row per worker count with
/// walls, both speedups, commit throughput and the abort accounting.
pub fn bench_spec_json(report: &SpecBenchReport, git: &str, smoke: bool) -> String {
    let mut rows = String::new();
    for (i, r) in report.rows.iter().enumerate() {
        let sep = if i + 1 < report.rows.len() { "," } else { "" };
        rows.push_str(&format!(
            "    {{\"workers\": {}, \"wall_secs\": {:.6}, \
             \"speedup_vs_serial\": {:.4}, \"stealing_wall_secs\": {:.6}, \
             \"speedup_vs_stealing\": {:.4}, \"commits_per_sec\": {:.1}, \
             \"commits\": {}, \"executions\": {}, \"aborts\": {}, \
             \"stalls\": {}, \"wasted_executions\": {}, \
             \"abort_rate\": {:.4}, \"blocks\": {}}}{sep}\n",
            r.workers,
            r.wall_secs,
            report.serial_wall_secs / r.wall_secs,
            r.stealing_wall_secs,
            r.stealing_wall_secs / r.wall_secs,
            r.commits_per_sec(),
            r.stats.commits,
            r.stats.executions,
            r.stats.aborts,
            r.stats.stalls,
            r.stats.wasted_executions(),
            r.stats.abort_rate(),
            r.stats.blocks,
        ));
    }
    format!(
        "{{\n  \"schema_version\": {},\n  \"experiment\": \"speculate\",\n  \
         \"git\": \"{}\",\n  \"smoke\": {},\n  \"molecule\": \"{}\",\n  \
         \"basis\": \"{}\",\n  \"nchunks\": {},\n  \"samples\": {},\n  \
         \"scf_iterations\": {},\n  \"serial_wall_secs\": {:.6},\n  \
         \"serial_energy\": {:.12},\n  \"speculative_energy\": {:.12},\n  \
         \"rows\": [\n{}  ]\n}}\n",
        emx_obs::SCHEMA_VERSION,
        git,
        smoke,
        report.molecule,
        report.basis,
        report.nchunks,
        report.samples,
        report.iterations,
        report.serial_wall_secs,
        report.serial_energy,
        report
            .rows
            .first()
            .map_or(report.serial_energy, |r| r.energy),
        rows
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_speculate_measures_and_balances() {
        let report = speculate_measure(true);
        assert_eq!(report.rows.len(), 2);
        assert!(report.serial_wall_secs > 0.0);
        for r in &report.rows {
            assert!(r.wall_secs > 0.0);
            assert!(r.stealing_wall_secs > 0.0);
            assert!(r.stats.commits > 0);
            assert_eq!(
                r.stats.executions,
                r.stats.commits + r.stats.aborts + r.stats.stalls,
                "P={}: abort accounting must balance",
                r.workers
            );
            assert!((r.energy - report.serial_energy).abs() < 1e-12);
        }
        assert!(report.speedup_vs_serial(1).is_some());
        assert!(report.speedup_vs_serial(64).is_none());
    }

    #[test]
    fn bench_spec_json_parses_and_carries_the_sweep() {
        let report = speculate_measure(true);
        let json = bench_spec_json(&report, "test", true);
        let v = emx_obs::Json::parse(&json).expect("stamped JSON parses");
        assert_eq!(
            v.get("experiment").and_then(|e| e.as_str()),
            Some("speculate")
        );
        let rows = v.get("rows").and_then(|r| r.as_arr()).expect("rows");
        assert_eq!(rows.len(), report.rows.len());
        for (row, r) in rows.iter().zip(&report.rows) {
            assert_eq!(
                row.get("workers").and_then(|w| w.as_f64()),
                Some(r.workers as f64)
            );
            assert!(row.get("abort_rate").and_then(|a| a.as_f64()).is_some());
        }
    }
}
