//! `reproduce profile` measurement: full-roster attribution capture on
//! the real Fock build, plus the rings-on vs obs-off recording-overhead
//! number stamped into `results/BENCH_obs.json`.
//!
//! Two halves, mirroring `fockbench`:
//!
//! * [`profile_fock_roster`] runs every roster policy on the standard
//!   (H₂O)₂/6-31G build with per-worker event rings attached and
//!   returns one [`FockProfile`] per policy — attribution table rows,
//!   speedscope / collapsed-stack export inputs, and the differential
//!   comparison all come from this single capture.
//! * [`recording_overhead`] measures the cost of leaving the rings on:
//!   median builds/second with no observability vs with rings attached,
//!   on the same warmed kernel. The stamped overhead is held to
//!   [`OVERHEAD_CEILING_FRAC`] so observability cost regressions are
//!   caught exactly like Fock kernel regressions.
//!
//! `EMX_PROFILE_SMOKE=1` switches both to the small H₂O/STO-3G workload
//! and the reduced [`PolicyKind::profile_roster`] for CI.

use crate::fockbench::{fock_hotpath_workload, mock_density};
use emx_chem::basis::{BasisSet, BasisedMolecule};
use emx_chem::molecule::Molecule;
use emx_chem::screening::ScreenedPairs;
use emx_core::fockexec::{FockProfile, ParallelFock};
use emx_obs::{Attribution, MetricsRegistry, RingSet};
use emx_runtime::{Executor, PolicyKind, RuntimeObs};
use std::sync::Arc;
use std::time::Instant;

/// Ceiling on the rings-on recording overhead vs the obs-off build
/// (fraction of build time). Stamped into `BENCH_obs.json` and asserted
/// by non-smoke `reproduce profile` runs and the results-file test.
/// Deliberately wider than the stamped measurement (~4.6% on the
/// reference host): a median-of-5 wall-clock micro-benchmark needs
/// headroom for slower or noisier hosts, so the ceiling catches real
/// regressions while the stamped `recording_overhead_frac` remains the
/// tracked signal.
pub const OVERHEAD_CEILING_FRAC: f64 = 0.08;

/// Ring depth used for profiled builds: deep enough to hold every
/// event of a medium build on few workers without overwrite.
pub const PROFILE_RING_CAPACITY: usize = 1 << 14;

/// True when `EMX_PROFILE_SMOKE` is set — CI's fast mode (small
/// molecule, reduced roster, fewer overhead samples, no ceiling
/// assertion since shared runners are noisy).
pub fn profile_smoke() -> bool {
    std::env::var("EMX_PROFILE_SMOKE").is_ok()
}

/// One profiled roster entry.
pub struct PolicyProfile {
    /// Roster display label (the historical CSV name).
    pub label: String,
    /// Attribution + raw event streams of one build under this policy.
    pub profile: FockProfile,
}

/// The rings-on vs obs-off cost of recording, measured on the same
/// warmed kernel (median of `samples` timed builds each).
pub struct RecordingOverhead {
    /// Timed builds per mode.
    pub samples: usize,
    /// Workers used for the measured builds.
    pub workers: usize,
    /// Median throughput with `obs = None` (the zero-cost path).
    pub obs_off_builds_per_sec: f64,
    /// Median throughput with per-worker rings attached.
    pub rings_on_builds_per_sec: f64,
}

impl RecordingOverhead {
    /// Fractional slowdown of rings-on vs obs-off (negative = noise).
    pub fn overhead_frac(&self) -> f64 {
        if self.rings_on_builds_per_sec <= 0.0 {
            return f64::INFINITY;
        }
        self.obs_off_builds_per_sec / self.rings_on_builds_per_sec - 1.0
    }
}

/// Everything the `reproduce profile` arm reports and stamps.
pub struct ProfileReport {
    /// Workload molecule label.
    pub molecule: String,
    /// Basis-set label.
    pub basis: String,
    /// Tasks in the decomposition.
    pub ntasks: usize,
    /// Workers every profiled build ran on.
    pub workers: usize,
    /// One profiled build per roster policy.
    pub policies: Vec<PolicyProfile>,
    /// The recording-overhead measurement.
    pub overhead: RecordingOverhead,
}

impl ProfileReport {
    /// The profile stamped as the differential baseline (work stealing
    /// — the policy the paper's headline comparisons center on), or the
    /// first roster entry if the roster somehow lacks it.
    pub fn baseline_policy(&self) -> Option<&PolicyProfile> {
        self.policies
            .iter()
            .find(|p| p.label == "work-stealing")
            .or_else(|| self.policies.first())
    }
}

/// The profile workload: (H₂O)₂/6-31G (the `fock_hotpath` workload), or
/// H₂O/STO-3G under smoke.
fn profile_workload(smoke: bool) -> (BasisedMolecule, ScreenedPairs, &'static str, &'static str) {
    if smoke {
        let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::Sto3g);
        let pairs = ScreenedPairs::build(&bm, 1e-12);
        (bm, pairs, "H2O", "STO-3G")
    } else {
        let (bm, pairs) = fock_hotpath_workload();
        (bm, pairs, "(H2O)2", "6-31G")
    }
}

/// Runs the roster with rings attached and measures recording overhead.
/// Full mode: the 8-policy [`PolicyKind::full_roster`] at `workers`,
/// 5 overhead samples. Smoke: [`PolicyKind::profile_roster`], 2 samples.
pub fn profile_fock_roster(workers: usize, smoke: bool) -> ProfileReport {
    let (bm, pairs, molecule, basis) = profile_workload(smoke);
    let pf = ParallelFock::new(&bm, &pairs, 1e-10, if smoke { 4 } else { 8 });
    let density = mock_density(bm.nbf);

    let roster = if smoke {
        PolicyKind::profile_roster(4)
    } else {
        PolicyKind::full_roster(&pf.estimated_costs(), workers, 8)
    };

    let mut policies = Vec::new();
    for (label, kind) in roster {
        // Serial profiles on one worker; everything else on `workers`.
        let w = if matches!(kind, PolicyKind::Serial) {
            1
        } else {
            workers
        };
        // Warm-up build so attribution measures the steady-state kernel.
        pf.execute(&density, &Executor::new(w, kind.clone()));
        let (_, report, mut profile) =
            pf.execute_profiled(&density, w, kind, PROFILE_RING_CAPACITY);
        assert_eq!(report.total_tasks_run(), pf.ntasks());
        // Report under the roster's display label (`kind.name()` is the
        // family name; the roster distinguishes e.g. counter chunks).
        profile.attribution.policy = label.clone();
        policies.push(PolicyProfile { label, profile });
    }

    let overhead = recording_overhead(&pf, &density, workers, if smoke { 2 } else { 5 });

    ProfileReport {
        molecule: molecule.into(),
        basis: basis.into(),
        ntasks: pf.ntasks(),
        workers,
        policies,
        overhead,
    }
}

/// Median-of-samples builds/second for obs-off vs rings-on on one
/// warmed kernel under work stealing (the policy whose idle/steal path
/// takes the extra ring clock reads — the worst case for recording
/// overhead).
pub fn recording_overhead(
    pf: &ParallelFock<'_>,
    density: &emx_linalg::Matrix,
    workers: usize,
    samples: usize,
) -> RecordingOverhead {
    let kind = PolicyKind::WorkStealing(Default::default());

    let median_secs = |ex: &Executor| -> f64 {
        // One untimed warm-up, then `samples` timed builds.
        pf.execute(density, ex);
        let mut secs: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                let (_, r) = pf.execute(density, ex);
                assert_eq!(r.total_tasks_run(), pf.ntasks());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(|a, b| a.total_cmp(b));
        secs[secs.len() / 2]
    };

    let off = median_secs(&Executor::new(workers, kind.clone()));
    let rings = RingSet::new(workers, PROFILE_RING_CAPACITY);
    let obs = RuntimeObs::new(Arc::new(MetricsRegistry::new())).with_rings(rings);
    let on = median_secs(&Executor::new(workers, kind).with_obs(obs));

    RecordingOverhead {
        samples,
        workers,
        obs_off_builds_per_sec: 1.0 / off,
        rings_on_builds_per_sec: 1.0 / on,
    }
}

/// Renders the stamped `results/BENCH_obs.json`: schema + workload
/// identity, both throughputs, the overhead fraction with its ceiling,
/// and the baseline policy's attribution (the differential baseline
/// future runs compare against via [`Attribution::from_json`]).
pub fn bench_obs_json(report: &ProfileReport, git: &str, smoke: bool) -> String {
    let o = &report.overhead;
    let attribution = report
        .baseline_policy()
        .map(|p| p.profile.attribution.to_json().to_json_string())
        .unwrap_or_else(|| "null".into());
    format!(
        "{{\n  \"schema_version\": {},\n  \"experiment\": \"profile\",\n  \
         \"git\": \"{}\",\n  \"smoke\": {},\n  \"molecule\": \"{}\",\n  \
         \"basis\": \"{}\",\n  \"ntasks\": {},\n  \"workers\": {},\n  \
         \"samples\": {},\n  \"obs_off_builds_per_sec\": {:.3},\n  \
         \"rings_on_builds_per_sec\": {:.3},\n  \
         \"recording_overhead_frac\": {:.4},\n  \
         \"overhead_ceiling_frac\": {:.2},\n  \"attribution\": {}\n}}\n",
        emx_obs::SCHEMA_VERSION,
        git,
        smoke,
        report.molecule,
        report.basis,
        report.ntasks,
        o.workers,
        o.samples,
        o.obs_off_builds_per_sec,
        o.rings_on_builds_per_sec,
        o.overhead_frac(),
        OVERHEAD_CEILING_FRAC,
        attribution
    )
}

/// Parses the attribution block back out of a stamped `BENCH_obs.json`
/// (the differential baseline). Returns `None` for missing files, old
/// schemas or a `null` attribution.
pub fn baseline_attribution(path: &str) -> Option<Attribution> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = emx_obs::Json::parse(&text).ok()?;
    Attribution::from_json(v.get("attribution")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_attributes_every_policy() {
        let report = profile_fock_roster(2, true);
        assert_eq!(report.policies.len(), 3, "reduced roster");
        for p in &report.policies {
            let a = &p.profile.attribution;
            assert_eq!(a.policy, p.label);
            let tasks: u64 = a.workers.iter().map(|w| w.tasks).sum();
            assert_eq!(tasks as usize, report.ntasks, "{}", p.label);
            assert!(
                a.max_sum_error() < 0.01,
                "{}: decomposition off by {}",
                p.label,
                a.max_sum_error()
            );
        }
        assert!(report.baseline_policy().unwrap().label == "work-stealing");
        assert!(report.overhead.obs_off_builds_per_sec > 0.0);
        assert!(report.overhead.rings_on_builds_per_sec > 0.0);
    }

    #[test]
    fn bench_obs_json_round_trips_the_baseline_attribution() {
        let report = profile_fock_roster(2, true);
        let json = bench_obs_json(&report, "test", true);
        let v = emx_obs::Json::parse(&json).expect("stamped JSON parses");
        assert_eq!(
            v.get("overhead_ceiling_frac").unwrap().as_f64(),
            Some(OVERHEAD_CEILING_FRAC)
        );
        let a =
            Attribution::from_json(v.get("attribution").unwrap()).expect("attribution embedded");
        assert_eq!(a.policy, "work-stealing");
        let path = std::env::temp_dir().join("emx_bench_obs_test.json");
        std::fs::write(&path, &json).unwrap();
        let b = baseline_attribution(path.to_str().unwrap()).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&path);
    }
}
