//! `reproduce` — regenerates every table/figure of the study.
//!
//! ```text
//! cargo run --release -p emx-bench --bin reproduce            # all
//! cargo run --release -p emx-bench --bin reproduce e2 e3      # subset
//! ```
//!
//! Experiment ids follow `DESIGN.md` (E1–E8) plus `faults` (fault
//! injection, see `docs/FAULT_MODEL.md`), `ablations`, `obs`
//! (an instrumented capture of the whole stack), `analyze` (the static
//! concurrency-correctness gate, see `docs/ANALYSIS.md`), `smoke`
//! (CI's fast check: the full policy roster through both substrates)
//! `profile` (ring-captured blame attribution of the real Fock
//! build per policy, stamping `results/BENCH_obs.json` — see
//! `docs/OBSERVABILITY.md`; `EMX_PROFILE_SMOKE=1` shrinks it for CI)
//! and `speculate` (the Block-STM speculative incremental SCF against
//! the sequential and work-stealing drivers, stamping
//! `results/BENCH_spec.json` — see `docs/SPECULATION.md`;
//! `EMX_SPEC_SMOKE=1` shrinks it for CI) and `distsim` (the simulator
//! event core at 10⁴–10⁵ ranks, calendar queue vs the binary-heap
//! oracle, stamping `results/BENCH_distsim.json` — see
//! `docs/ARCHITECTURE.md`; `EMX_DISTSIM_SMOKE=1` shrinks it for CI).
//! Output is plain-text
//! tables; pass `--csv DIR` to also write stamped CSV files,
//! `--trace-out DIR` for Chrome trace JSON (plus speedscope/collapsed
//! exports under `profile`) and `--metrics-out FILE` for
//! a stamped JSONL metrics snapshot (the latter two imply `obs`).

use emx_balance::prelude::{movement, rebalance, PersistenceConfig, Problem};
use emx_bench::{
    block_owners, capture_observability, chem_workload_medium, synthetic_workload_large,
};
use emx_chem::synthetic::CostModel;
use emx_core::prelude::*;
use emx_distsim::machine::MachineModel;
use emx_obs::{git_describe_string, RunMeta, SCHEMA_VERSION};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            csv_dir = Some(it.next().expect("--csv needs a directory"));
        } else if a == "--trace-out" {
            trace_dir = Some(it.next().expect("--trace-out needs a directory"));
        } else if a == "--metrics-out" {
            metrics_path = Some(it.next().expect("--metrics-out needs a file path"));
        } else {
            wanted.push(a.to_lowercase());
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = vec![
            "validate",
            "e1",
            "e2",
            "e3",
            "e4",
            "e5",
            "e6",
            "e7",
            "e8",
            "e9",
            "faults",
            "f1",
            "obs",
            "analyze",
            "ablations",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    // The export flags are requests for the instrumented capture.
    if (trace_dir.is_some() || metrics_path.is_some()) && !wanted.iter().any(|w| w == "obs") {
        wanted.push("obs".to_string());
    }

    let machine = MachineModel::default();
    let mut tables: Vec<Table> = Vec::new();

    for exp in &wanted {
        match exp.as_str() {
            "validate" => {
                tables.push(validate_chemistry());
            }
            "e1" => {
                let w = chem_workload_medium();
                tables.push(e1_scaling(&w, &[1, 2, 4, 8, 16, 32, 64], &machine));
            }
            "e2" => {
                let w = chem_workload_medium();
                let h = e2_headline(&w, 16, &machine);
                tables.push(h.table);
                println!(
                    "[e2] work stealing improves {:.0}% over naive block partitioning and \
                     {:.0}% over the best static partition (paper: ~50% over its static \
                     baseline — between the two readings)\n",
                    (h.vs_block - 1.0) * 100.0,
                    (h.vs_best_static - 1.0) * 100.0
                );
            }
            "e3" => {
                let w = measure_fock_workload(
                    &Molecule::water_cluster(2, 5),
                    BasisSet::Sto3g,
                    8,
                    1e-10,
                    "(H2O)2/STO-3G",
                );
                tables.push(e3_balancer_quality(&w, &[4, 8, 16, 32]));
                tables.push(e3_comm_aware(&w, 16, &machine, 1 << 16));
            }
            "e4" => {
                tables.push(e4_partition_cost(&[1_000, 4_000, 16_000, 64_000], 16, 7));
            }
            "e5" => {
                let mol = Molecule::water_cluster(2, 42);
                let workloads: Vec<(usize, KernelWorkload)> = [1usize, 2, 8, 32, 128, usize::MAX]
                    .into_iter()
                    .map(|chunk| {
                        let w = estimate_fock_workload(
                            &mol,
                            BasisSet::SixThirtyOneG,
                            chunk,
                            1e-10,
                            1.0,
                            format!("chunk={chunk}"),
                        );
                        (chunk, w)
                    })
                    .collect();
                tables.push(e5_granularity(&workloads, 64, &machine));
            }
            "e6" => {
                let uniform = synthetic_workload(
                    CostModel::Uniform { scale: 1.0 },
                    4096,
                    3,
                    4.0,
                    "uniform-4096",
                );
                tables.push(e6_variability(&uniform, 16, &machine));
                let w = chem_workload_medium();
                tables.push(e6_variability(&w, 16, &machine));
            }
            "e7" => {
                tables.push(e7_overheads(&[1, 2, 4]));
            }
            "e8" => {
                let w = synthetic_workload_large(100_000);
                tables.push(e8_distributed(&w, &[64, 256, 1024, 4096, 16_384], &machine));
            }
            "e9" => {
                let base = chem_workload_medium();
                tables.push(e9_weak_scaling(
                    &base,
                    &[4, 16, 64, 256, 1024],
                    128,
                    &machine,
                ));
                tables.push(overhead_decomposition(&base, 64, &machine));
            }
            "faults" => {
                let w = chem_workload_medium();
                tables.push(e10_faults(&w, 16, &machine));
                // Instrumented capture of one fail-stop stealing run:
                // fault events flow through the emx-obs registry exactly
                // as runtime/sim metrics do.
                let reg = emx_obs::MetricsRegistry::new();
                let ideal = w.total() / 16.0;
                let cfg = SimConfig {
                    workers: 16,
                    machine,
                    ..SimConfig::new(16)
                };
                let plan = FaultPlan::fault_free().with_rank_failure(3, 0.25 * ideal);
                let r = simulate_with_faults(
                    &w.costs,
                    &SimModel::WorkStealing { steal_half: true },
                    &cfg,
                    &plan,
                );
                publish_fault_metrics(&reg, "faults.failstop", &r);
                println!(
                    "[faults] fail-stop capture on {}: injected {}, detected {}, \
                     orphaned {}, recovered {}, lost {} ({} fault metrics registered)\n",
                    w.name,
                    r.faults.injected,
                    r.faults.detected,
                    r.faults.orphaned,
                    r.faults.recovered,
                    r.faults.lost,
                    reg.snapshot().len()
                );
            }
            "f1" => {
                figure_timelines(&machine);
            }
            "obs" => {
                run_obs_capture(trace_dir.as_deref(), metrics_path.as_deref());
            }
            "smoke" => {
                tables.push(smoke_full_roster(&machine));
            }
            "fock" => {
                tables.push(fock_kernel_throughput());
            }
            "profile" => {
                tables.push(run_profile(trace_dir.as_deref()));
            }
            "speculate" => {
                tables.push(run_speculate());
            }
            "distsim" => {
                tables.push(run_distsim());
            }
            "analyze" => {
                let (table, report) = run_analyze();
                tables.push(table);
                if !report.is_clean() {
                    eprintln!("{}", report.to_json());
                    eprintln!(
                        "analyze: {} violation(s) — see the machine-readable \
                         report above",
                        report.violations.len()
                    );
                    std::process::exit(1);
                }
            }
            "ablations" => {
                tables.push(ablation_steal_policy(&machine));
                tables.push(ablation_counter_chunk(&machine));
                tables.push(ablation_group_counters(&machine));
                tables.push(ablation_hierarchical_stealing(&machine));
                tables.push(ablation_screening_skew());
                tables.push(ablation_seed_partition());
                tables.push(ablation_persistence_warmup());
                tables.push(ablation_incremental_drift());
                tables.push(ablation_hybrid_seeding(&machine));
            }
            other => eprintln!("unknown experiment id: {other}"),
        }
    }

    for t in &tables {
        println!("{t}");
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let meta = RunMeta::new("reproduce", git_describe_string());
        for (i, t) in tables.iter().enumerate() {
            let path = format!("{dir}/{i:02}_{}.csv", emx_bench::csv_slug(&t.title));
            std::fs::write(&path, stamped_csv(&meta, t)).expect("write csv");
            println!("wrote {path}");
        }
    }
}

/// The `fock` experiment — a quick console view of the real (H₂O)₂/6-31G
/// Fock-build throughput per policy (the full trajectory lives in the
/// `fock_hotpath` bench, which also stamps `results/BENCH_fock.json`).
fn fock_kernel_throughput() -> Table {
    let report = emx_bench::fock_hotpath_measure(2, &[1, 2]);
    let mut t = Table::new(
        format!(
            "Fock kernel throughput on {}/{} ({} tasks, {} quartets/build)",
            report.molecule, report.basis, report.ntasks, report.quartets_per_build
        ),
        &["policy", "workers", "builds/s", "quartets/s"],
    );
    for row in &report.rows {
        t.push(vec![
            row.policy.clone(),
            row.workers.to_string(),
            format!("{:.2}", row.builds_per_sec),
            format!("{:.0}", row.quartets_per_sec),
        ]);
    }
    t
}

/// The `profile` experiment — the always-on profiling pipeline end to
/// end. Every roster policy's Fock build runs with per-worker event
/// rings attached; each capture is decomposed into blame categories
/// (compute / counter / steal / merge / idle, summing to the wall
/// clock), compared differentially against the headline static policy
/// and the previously stamped baseline, exported as speedscope +
/// collapsed stacks when `--trace-out` is given, and finally stamped
/// into `results/BENCH_obs.json` together with the measured rings-on
/// vs obs-off recording overhead (ceiling-checked outside smoke mode).
fn run_profile(trace_dir: Option<&str>) -> Table {
    use emx_bench::profbench::{self, OVERHEAD_CEILING_FRAC};
    use emx_obs::AttributionDiff;

    let smoke = profbench::profile_smoke();
    let workers = if smoke { 2 } else { 4 };
    let report = profbench::profile_fock_roster(workers, smoke);

    let mut t = Table::new(
        format!(
            "Profile: ring-captured blame attribution on {}/{} ({} tasks, P={})",
            report.molecule, report.basis, report.ntasks, report.workers
        ),
        &[
            "policy",
            "wall ms",
            "crit path",
            "compute%",
            "counter%",
            "steal%",
            "merge%",
            "idle%",
            "lost",
        ],
    );
    for p in &report.policies {
        let a = &p.profile.attribution;
        let tot = a.totals();
        // Percentages of the P·wall budget, so the five categories of a
        // multi-worker run still sum to ~100.
        let budget = (a.wall_ns.max(1) * a.workers.len().max(1) as u64) as f64;
        let pct = |ns: u64| format!("{:.1}", ns as f64 / budget * 100.0);
        t.push(vec![
            p.label.clone(),
            format!("{:.3}", a.wall_ns as f64 / 1e6),
            format!("{:.0}%", a.critical_path_fraction() * 100.0),
            pct(tot.compute_ns),
            pct(tot.counter_ns),
            pct(tot.steal_ns),
            pct(tot.merge_ns),
            pct(tot.idle_ns),
            a.overwritten.to_string(),
        ]);
    }

    // Per-worker detail for the headline policy, plus the differential
    // against the static baseline the paper compares it to.
    let ws = report.policies.iter().find(|p| p.label == "work-stealing");
    if let Some(ws) = ws {
        println!("{}", ws.profile.attribution.render());
        if let Some(sb) = report.policies.iter().find(|p| p.label == "static-block") {
            println!(
                "{}",
                AttributionDiff::between(&sb.profile.attribution, &ws.profile.attribution).render()
            );
        }
    }

    // Differential against the previously stamped baseline (read
    // before this run overwrites the stamp).
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_obs.json");
    if let (Some(prev), Some(cur)) = (
        profbench::baseline_attribution(bench_path),
        report.baseline_policy(),
    ) {
        println!("vs stamped baseline:");
        println!(
            "{}",
            AttributionDiff::between(&prev, &cur.profile.attribution).render()
        );
    }

    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(dir).expect("create trace dir");
        for p in &report.policies {
            let slug = emx_bench::csv_slug(&p.label);
            let path = format!("{dir}/profile_{slug}.speedscope.json");
            let name = format!("{} fock build", p.label);
            std::fs::write(&path, emx_obs::speedscope_json(&name, &p.profile.events))
                .expect("write speedscope export");
            println!("wrote {path}");
            let path = format!("{dir}/profile_{slug}.collapsed.txt");
            std::fs::write(&path, emx_obs::collapsed_stacks(&p.profile.events))
                .expect("write collapsed-stack export");
            println!("wrote {path}");
        }
    }

    let o = &report.overhead;
    println!(
        "[profile] recording overhead on the warmed Fock build (P={}, {} samples): \
         obs-off {:.2} builds/s, rings-on {:.2} builds/s -> {:+.2}% (ceiling {:.0}%)\n",
        o.workers,
        o.samples,
        o.obs_off_builds_per_sec,
        o.rings_on_builds_per_sec,
        o.overhead_frac() * 100.0,
        OVERHEAD_CEILING_FRAC * 100.0
    );
    if !smoke {
        assert!(
            o.overhead_frac() <= OVERHEAD_CEILING_FRAC,
            "ring recording overhead {:.2}% exceeds the {:.0}% ceiling",
            o.overhead_frac() * 100.0,
            OVERHEAD_CEILING_FRAC * 100.0
        );
    }
    let json = profbench::bench_obs_json(&report, &git_describe_string(), smoke);
    std::fs::write(bench_path, json).expect("write BENCH_obs.json");
    println!("wrote {bench_path}");
    t
}

/// The `speculate` experiment — the Block-STM speculative executor on
/// the real ΔD incremental SCF. The speculative driver runs each
/// iteration's Fock build as one multi-version speculative block with
/// interleaved density-epoch refreshes (the conflict generator), at
/// 1/2/4/8 workers, against the sequential [`emx_chem::scf::rhf_incremental`]
/// baseline and a work-stealing reference on the identical chunk plan.
/// Energies must match the serial driver to 1e-12 and be bit-identical
/// across the worker sweep (the deterministic-commit rule); walls,
/// speedups, commit throughput and the abort accounting are stamped
/// into `results/BENCH_spec.json`.
fn run_speculate() -> Table {
    use emx_bench::specbench;

    let smoke = specbench::spec_smoke();
    let report = specbench::speculate_measure(smoke);

    let mut t = Table::new(
        format!(
            "Speculate: Block-STM incremental SCF on {}/{} ({} iterations, \
             {}-chunk blocks, serial {:.3}s)",
            report.molecule,
            report.basis,
            report.iterations,
            report.nchunks,
            report.serial_wall_secs
        ),
        &[
            "workers",
            "wall s",
            "vs serial",
            "vs stealing",
            "commits/s",
            "commits",
            "aborts",
            "stalls",
            "abort rate",
            "wasted",
        ],
    );
    for r in &report.rows {
        t.push(vec![
            r.workers.to_string(),
            format!("{:.3}", r.wall_secs),
            format!("{:.2}x", report.serial_wall_secs / r.wall_secs),
            format!("{:.2}x", r.stealing_wall_secs / r.wall_secs),
            format!("{:.0}", r.commits_per_sec()),
            r.stats.commits.to_string(),
            r.stats.aborts.to_string(),
            r.stats.stalls.to_string(),
            format!("{:.3}", r.stats.abort_rate()),
            r.stats.wasted_executions().to_string(),
        ]);
    }
    println!(
        "[speculate] speculative energy {:.10} Ha agrees with serial to 1e-12 \
         and is bit-identical across the worker sweep\n",
        report.serial_energy
    );

    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_spec.json");
    let json = specbench::bench_spec_json(&report, &git_describe_string(), smoke);
    std::fs::write(bench_path, json).expect("write BENCH_spec.json");
    println!("wrote {bench_path}");
    t
}

/// The `distsim` experiment — event-core throughput of the simulator
/// at cluster scale. The full scheduling-model roster runs at 10⁴ and
/// 10⁵ simulated ranks on both event-queue backends (the production
/// calendar queue and the retained binary-heap oracle — see
/// `docs/ARCHITECTURE.md`); every pair is asserted bitwise identical,
/// and the stamped metric is simulated events per second of wall clock.
/// The CI gate is host-independent: aggregate calendar throughput must
/// stay within [`emx_bench::DISTSIM_FLOOR_RATIO`] of the heap oracle's
/// on the same host. Walls, rates and the ratio are stamped into
/// `results/BENCH_distsim.json`; `EMX_DISTSIM_SMOKE=1` shrinks the
/// sweep to 10³/10⁴ ranks for CI.
fn run_distsim() -> Table {
    use emx_bench::distsimbench;

    let smoke = distsimbench::distsim_smoke();
    let report = distsimbench::distsim_measure(smoke);

    let mut t = Table::new(
        format!(
            "Distsim: event-core throughput, roster x ranks ({} samples, \
             calendar vs heap oracle)",
            report.samples
        ),
        &[
            "model",
            "ranks",
            "events",
            "cal wall s",
            "cal ev/s",
            "heap wall s",
            "heap ev/s",
            "vs heap",
        ],
    );
    for r in &report.rows {
        t.push(vec![
            r.model.to_string(),
            r.ranks.to_string(),
            r.events.to_string(),
            format!("{:.4}", r.calendar_wall_secs),
            format!("{:.0}", r.calendar_events_per_sec()),
            format!("{:.4}", r.heap_wall_secs),
            format!("{:.0}", r.heap_events_per_sec()),
            format!("{:.2}x", r.speedup_vs_heap()),
        ]);
    }
    println!(
        "[distsim] aggregate calendar {:.0} events/s vs heap oracle {:.0} events/s \
         (ratio {:.2}, floor {:.2}) — every cell bitwise identical across backends\n",
        report.calendar_rate(),
        report.heap_rate(),
        report.ratio_vs_heap(),
        emx_bench::DISTSIM_FLOOR_RATIO
    );
    assert!(
        report.ratio_vs_heap() >= emx_bench::DISTSIM_FLOOR_RATIO,
        "calendar event core fell below {:.2}x of the heap oracle's throughput \
         (ratio {:.4}) — event-core regression",
        emx_bench::DISTSIM_FLOOR_RATIO,
        report.ratio_vs_heap()
    );

    let bench_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_distsim.json"
    );
    let json = distsimbench::bench_distsim_json(&report, &git_describe_string(), smoke);
    std::fs::write(bench_path, json).expect("write BENCH_distsim.json");
    println!("wrote {bench_path}");
    t
}

/// The `smoke` experiment — CI's fast end-to-end check. Runs the entire
/// policy roster through BOTH substrates on a small skewed workload:
/// every policy executes on real threads (exactly-once asserted by the
/// executor) and replays in the discrete-event simulator. Seconds, not
/// minutes.
fn smoke_full_roster(machine: &MachineModel) -> Table {
    let w = synthetic_workload(
        CostModel::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        96,
        7,
        1e-4,
        "smoke-96",
    );
    let p = 4;
    let n = w.ntasks();
    let cfg = SimConfig {
        workers: p,
        machine: *machine,
        ..SimConfig::new(p)
    };
    let mut t = Table::new(
        format!(
            "Smoke: full policy roster on both substrates ({}, P={p})",
            w.name
        ),
        &[
            "model",
            "threads wall",
            "threads tasks",
            "sim makespan",
            "sim util",
        ],
    );
    for (label, kind) in PolicyKind::full_roster(&w.costs, p, 8) {
        let ex = Executor::new(p, kind.clone());
        let (sums, report) = ex.run(
            n,
            |_| 0.0f64,
            |i, acc| {
                *acc += (w.costs[i] * 1e6).sqrt();
            },
        );
        assert!(sums.iter().sum::<f64>() > 0.0);
        let sim = simulate_policy(&w.costs, &kind, &cfg);
        assert_eq!(sim.assignment.len(), n, "{label}: simulator lost tasks");
        t.push(vec![
            label,
            fmt_secs(report.wall.as_secs_f64()),
            report.total_tasks_run().to_string(),
            fmt_secs(sim.makespan),
            format!("{:.2}", sim.utilization()),
        ]);
    }
    t
}

/// The `analyze` experiment: the static concurrency-correctness gate.
///
/// Three stages. (1) The schedule verifier drives the full
/// [`PolicyKind`] roster through the sequential replay, the simulator
/// and the threaded executor, then through every fault scenario ×
/// recovery policy. (2) The structural wait-for-graph liveness check
/// rejects wedgeable configurations from shape alone. (3) The mutation
/// self-test seeds known defects — dropped task, double assignment,
/// dead-victim spin — and requires each to surface as a distinct
/// violation of the expected kind, proving the verifier can actually
/// see. The healthy sweeps must be clean; any violation (or an escaped
/// mutation) fails the run with the machine-readable JSON report.
fn run_analyze() -> (Table, emx_analyze::report::AnalysisReport) {
    use emx_analyze::prelude::*;

    let cfg = VerifierConfig::default();
    let mut t = Table::new(
        format!(
            "Analyze: schedule verifier, config liveness, mutation self-test \
             (N={}, P={})",
            cfg.ntasks, cfg.workers
        ),
        &["stage", "subject", "passed", "violations", "note"],
    );
    let mut gate = AnalysisReport::default();

    for kind in verification_roster(&cfg) {
        let mut r = verify_policy(&kind, &cfg);
        r.merge(verify_policy_faults(&kind, &cfg));
        t.push(vec![
            "verify".into(),
            kind.name().into(),
            r.passed.len().to_string(),
            r.violations.len().to_string(),
            if r.skipped.is_empty() {
                String::new()
            } else {
                format!(
                    "{} combination(s) inexpressible, listed in report",
                    r.skipped.len()
                )
            },
        ]);
        gate.merge(r);
    }

    let roster = verification_roster(&cfg);
    let plans = fault_scenarios(&cfg);
    let live = check_roster_liveness(&roster, &plans, cfg.workers, Some(3));
    t.push(vec![
        "liveness".into(),
        format!("{} policies x {} plans", roster.len(), plans.len()),
        live.passed.len().to_string(),
        live.violations.len().to_string(),
        String::new(),
    ]);
    gate.merge(live);

    for (mutation, base) in emx_analyze::mutation::mutation_roster(cfg.ntasks) {
        let out = run_mutation(mutation, &base, cfg.ntasks, cfg.workers);
        let expected = mutation.expected_kind();
        let caught: Vec<_> = out
            .violations
            .iter()
            .filter(|v| v.kind == expected)
            .collect();
        let note = match caught.first() {
            Some(v) => {
                let task = v.task.map_or(String::new(), |x| format!(" task {x}"));
                let worker = v.worker.map_or(String::new(), |x| format!(" worker {x}"));
                format!("caught as {}{task}{worker}", v.kind)
            }
            None => "ESCAPED".to_string(),
        };
        t.push(vec![
            "mutation".into(),
            format!("{} in {}", mutation.name(), base.name()),
            caught.len().to_string(),
            out.violations.len().to_string(),
            note,
        ]);
    }
    gate.merge(self_test(cfg.ntasks, cfg.workers));

    (t, gate)
}

/// A result table's CSV, self-described with `#` header comments: the
/// schema version, experiment id, a git-describe string and the table
/// title — so a results directory outlives the producing binary.
fn stamped_csv(meta: &RunMeta, t: &Table) -> String {
    format!(
        "# schema_version: {}\n# experiment: {}\n# git: {}\n# table: {}\n{}",
        meta.schema_version,
        meta.experiment_id,
        meta.git_describe,
        t.title,
        t.to_csv()
    )
}

/// The `obs` experiment: runs the instrumented capture and writes its
/// Chrome traces / JSONL metrics wherever the flags point.
fn run_obs_capture(trace_dir: Option<&str>, metrics_path: Option<&str>) {
    let capture = capture_observability("obs");
    println!(
        "## obs: instrumented capture (schema v{SCHEMA_VERSION}, {} SCF iterations, {} trace files)",
        capture.scf_iterations,
        capture.traces.len()
    );
    match trace_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create trace dir");
            for (stem, json) in &capture.traces {
                let path = format!("{dir}/{stem}.trace.json");
                std::fs::write(&path, json).expect("write trace");
                println!("wrote {path} (load in Perfetto / chrome://tracing)");
            }
        }
        None => println!("pass --trace-out DIR to write Chrome trace JSON"),
    }
    match metrics_path {
        Some(path) => {
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).expect("create metrics dir");
                }
            }
            std::fs::write(path, &capture.metrics_jsonl).expect("write metrics");
            println!(
                "wrote {path} ({} records)",
                capture.metrics_jsonl.lines().count()
            );
        }
        None => println!("pass --metrics-out FILE to write the JSONL metrics snapshot"),
    }
    println!();
}

/// Figure F1: per-worker utilization timelines, static vs work stealing
/// at P = 16 on the measured chemistry workload — the study's
/// utilization picture in text form.
fn figure_timelines(machine: &MachineModel) {
    use emx_distsim::prelude::*;
    let w = chem_workload_medium();
    let p = 16;
    let cfg = SimConfig {
        workers: p,
        machine: *machine,
        trace: true,
        ..SimConfig::new(p)
    };
    println!(
        "## F1: utilization timelines on {} at P={p} (# = busy)",
        w.name
    );
    let owners = block_owners(w.ntasks(), p);
    let st = simulate(&w.costs, &SimModel::Static(owners), &cfg);
    println!(
        "\nstatic-block   (makespan {}, utilization {:.2}):",
        fmt_secs(st.makespan),
        st.utilization()
    );
    print!("{}", render_sim_timeline(&st, 72, 16));
    let ws = simulate(&w.costs, &SimModel::WorkStealing { steal_half: true }, &cfg);
    println!(
        "\nwork-stealing  (makespan {}, utilization {:.2}):",
        fmt_secs(ws.makespan),
        ws.utilization()
    );
    print!("{}", render_sim_timeline(&ws, 72, 16));
    println!();
}

/// Chemistry validation: the kernel's answers against literature values
/// — the precondition for any execution-model comparison to be
/// meaningful.
fn validate_chemistry() -> Table {
    use emx_chem::prelude::*;
    let mut t = Table::new(
        "Validation: kernel results vs literature",
        &["quantity", "measured", "reference"],
    );
    let run = |mol: &Molecule, basis: BasisSet| {
        let bm = BasisedMolecule::assign(mol, basis);
        (rhf(&bm, &ScfConfig::default()), bm)
    };
    let cases: Vec<(&str, Molecule, BasisSet, f64)> = vec![
        (
            "E(H2, STO-3G, R=1.4)",
            Molecule::h2(1.4),
            BasisSet::Sto3g,
            -1.1167,
        ),
        (
            "E(H2, 6-31G, R=1.4)",
            Molecule::h2(1.4),
            BasisSet::SixThirtyOneG,
            -1.1267,
        ),
        // The two water/STO-3G rows resolve a former 3 mHa "gap": the
        // literature value −74.9659 belongs to the STO-3G-*optimized*
        // geometry, while the experimental geometry sits at −74.9629 on
        // the same surface. Each geometry is validated against its own
        // reference.
        (
            "E(H2O, STO-3G, exp geom)",
            Molecule::water(),
            BasisSet::Sto3g,
            -74.9629,
        ),
        (
            "E(H2O, STO-3G, opt geom)",
            Molecule::water_sto3g_opt(),
            BasisSet::Sto3g,
            -74.9659,
        ),
        // Like the STO-3G rows: −75.9854 is the 6-31G-optimized-geometry
        // minimum; the experimental geometry sits at −75.9840.
        (
            "E(H2O, 6-31G, exp geom)",
            Molecule::water(),
            BasisSet::SixThirtyOneG,
            -75.9840,
        ),
        // −76.0107 again belongs to the basis's own optimized geometry;
        // the experimental geometry (Cartesian 6d shells) gives −76.0105.
        (
            "E(H2O, 6-31G*, exp geom)",
            Molecule::water(),
            BasisSet::SixThirtyOneGStar,
            -76.0105,
        ),
        // Experimental hexagon (r_CC 1.397 Å, r_CH 1.084 Å); −227.8914
        // belongs to the STO-3G-optimized ring.
        (
            "E(C6H6, STO-3G, exp geom)",
            Molecule::benzene(),
            BasisSet::Sto3g,
            -227.8906,
        ),
    ];
    // References are quoted to 4 decimals; half a unit in the last
    // printed place plus convergence slack is the honest tolerance. A
    // violation means the kernel (or the reference's geometry pairing)
    // regressed — it fails the run rather than printing a wrong table.
    const E_TOL: f64 = 6e-5;
    for (name, mol, basis, lit) in cases {
        let (r, _) = run(&mol, basis);
        assert!(r.converged, "{name} did not converge");
        assert!(
            (r.energy - lit).abs() < E_TOL,
            "{name}: measured {:.6} vs reference {lit:.4}",
            r.energy
        );
        t.push(vec![
            name.into(),
            format!("{:.4} Ha", r.energy),
            format!("{lit:.4} Ha"),
        ]);
    }
    // UHF anchors: one-electron H atom (exact in the basis) and the H₂
    // dissociation limit (spin-symmetry breaking → 2·E(H)).
    {
        let mut h_atom = Molecule::new();
        h_atom.push(Element::H, [0.0; 3]);
        let bm = BasisedMolecule::assign(&h_atom, BasisSet::Sto3g);
        let r = emx_chem::uhf::uhf(&bm, 2, &ScfConfig::default());
        assert!(r.converged);
        t.push(vec![
            "E_UHF(H atom, STO-3G)".into(),
            format!("{:.4} Ha", r.energy),
            "-0.4666 Ha (exact in basis)".into(),
        ]);
        let bm2 = BasisedMolecule::assign(&Molecule::h2(6.0), BasisSet::Sto3g);
        let r2 = emx_chem::uhf::uhf(&bm2, 1, &ScfConfig::default());
        assert!(r2.converged);
        t.push(vec![
            "E_UHF(H2, R=6.0)".into(),
            format!("{:.4} Ha", r2.energy),
            "-0.9332 Ha (= 2·E_H)".into(),
        ]);
    }

    // Water dipole, Mulliken charges and MP2 correlation (STO-3G).
    let (r, bm) = run(&Molecule::water(), BasisSet::Sto3g);
    let e2 = emx_chem::mp2::mp2_energy(&bm, &r);
    t.push(vec![
        "E2_MP2(H2O, STO-3G)".into(),
        format!("{e2:.4} Ha"),
        "~-0.036 Ha".into(),
    ]);
    let mu = dipole_moment(&bm, &r.density);
    let debye = (mu[0] * mu[0] + mu[1] * mu[1] + mu[2] * mu[2]).sqrt() * AU_TO_DEBYE;
    t.push(vec![
        "mu(H2O, STO-3G)".into(),
        format!("{debye:.3} D"),
        "1.71 D".into(),
    ]);
    let q = mulliken_charges(&bm, &r.density);
    t.push(vec![
        "q_Mulliken(O, STO-3G)".into(),
        format!("{:+.3} e", q[0]),
        "-0.37 e".into(),
    ]);
    t
}

/// Ablation: hybrid counter topologies — one global counter vs grouped
/// counters vs full stealing at scale.
fn ablation_group_counters(machine: &MachineModel) -> Table {
    let w = synthetic_workload_large(16_384);
    let p = 256;
    let mut m = *machine;
    m.counter_service = 2e-6;
    let cfg = emx_distsim::sim::SimConfig {
        workers: p,
        machine: m,
        ..emx_distsim::sim::SimConfig::new(p)
    };
    let mut t = Table::new(
        "Ablation: counter topology (simulated, P=256)",
        &["scheduler", "makespan", "fetches", "utilization"],
    );
    let mut run = |name: &str, model: SimModel| {
        let r = simulate(&w.costs, &model, &cfg);
        t.push(vec![
            name.into(),
            fmt_secs(r.makespan),
            r.counter_fetches.to_string(),
            fmt3(r.utilization()),
        ]);
    };
    run("global counter (c=8)", SimModel::Counter { chunk: 8 });
    run("guided", SimModel::Guided { min_chunk: 1 });
    for groups in [4usize, 16, 64] {
        run(
            &format!("{groups} group counters (c=8)"),
            SimModel::GroupCounters { groups, chunk: 8 },
        );
    }
    run("work stealing", SimModel::WorkStealing { steal_half: true });
    run(
        "static-block",
        SimModel::Static(block_owners(w.ntasks(), p)),
    );
    t
}

/// Ablation: hierarchical (node-local-first) stealing vs flat random
/// stealing as remote steals get more expensive.
fn ablation_hierarchical_stealing(machine: &MachineModel) -> Table {
    let w = synthetic_workload_large(16_384);
    let p = 256;
    let mut t = Table::new(
        "Ablation: hierarchical vs flat stealing (simulated, P=256, 16 workers/node)",
        &[
            "remote steal latency",
            "flat",
            "hierarchical",
            "hier steals",
        ],
    );
    for lat_us in [6.0f64, 50.0, 400.0] {
        let mut m = *machine;
        m.steal_latency = lat_us * 1e-6;
        let cfg = emx_distsim::sim::SimConfig {
            workers: p,
            machine: m,
            ..emx_distsim::sim::SimConfig::new(p)
        };
        let flat = simulate(&w.costs, &SimModel::WorkStealing { steal_half: true }, &cfg);
        let hier = simulate(
            &w.costs,
            &SimModel::HierarchicalStealing {
                steal_half: true,
                node_size: 16,
                remote_factor: 20.0,
            },
            &cfg,
        );
        t.push(vec![
            format!("{lat_us} us"),
            fmt_secs(flat.makespan),
            fmt_secs(hier.makespan),
            hier.steals.to_string(),
        ]);
    }
    t
}

/// Ablation: steal granularity (single task vs half the deque).
fn ablation_steal_policy(machine: &MachineModel) -> Table {
    let w = chem_workload_medium();
    let mut t = Table::new(
        "Ablation: steal granularity (simulated, P=64)",
        &["policy", "makespan", "steals", "attempts"],
    );
    let cfg = SimConfig {
        workers: 64,
        machine: *machine,
        ..SimConfig::new(64)
    };
    for (name, half) in [("steal-one", false), ("steal-half", true)] {
        let r = simulate(&w.costs, &SimModel::WorkStealing { steal_half: half }, &cfg);
        t.push(vec![
            name.into(),
            fmt_secs(r.makespan),
            r.steals.to_string(),
            r.steal_attempts.to_string(),
        ]);
    }
    t
}

/// Ablation: counter chunk sweep (the overhead/imbalance dial).
fn ablation_counter_chunk(machine: &MachineModel) -> Table {
    let w = synthetic_workload_large(16_384);
    let mut t = Table::new(
        "Ablation: shared-counter chunk size (simulated, P=256)",
        &["chunk", "makespan", "fetches", "utilization"],
    );
    let mut m = *machine;
    m.latency = 10e-6;
    m.counter_service = 1e-6;
    let cfg = SimConfig {
        workers: 256,
        machine: m,
        ..SimConfig::new(256)
    };
    for chunk in [1usize, 4, 16, 64, 256, 2048] {
        let r = simulate(&w.costs, &SimModel::Counter { chunk }, &cfg);
        t.push(vec![
            chunk.to_string(),
            fmt_secs(r.makespan),
            r.counter_fetches.to_string(),
            fmt3(r.utilization()),
        ]);
    }
    t
}

/// Ablation: Schwarz screening as the source of task-cost skew.
fn ablation_screening_skew() -> Table {
    let mol = Molecule::alkane(8);
    let mut t = Table::new(
        "Ablation: screening threshold vs task-cost skew (C8H18/STO-3G)",
        &["tau", "tasks", "total-cost", "max/mean", "gini"],
    );
    for (label, tau) in [
        ("0 (off)", 0.0),
        ("1e-12", 1e-12),
        ("1e-8", 1e-8),
        ("1e-6", 1e-6),
    ] {
        let w = estimate_fock_workload(&mol, BasisSet::Sto3g, usize::MAX, tau, 1.0, "s");
        let s = CostStats::from_costs(&w.costs);
        t.push(vec![
            label.into(),
            s.count.to_string(),
            fmt3(s.total),
            fmt3(s.max_over_mean),
            fmt3(s.gini),
        ]);
    }
    t
}

/// Ablation: initial seed partition of the stealing deques (real
/// threads; steals required to fix a bad seed).
fn ablation_seed_partition() -> Table {
    use emx_runtime::prelude::*;
    let mut t = Table::new(
        "Ablation: work-stealing seed partition (real threads, P=2)",
        &["seed", "steals", "attempts", "utilization"],
    );
    let n = 2048;
    for (name, seed) in [
        ("block", SeedPartition::Block),
        ("cyclic", SeedPartition::Cyclic),
        (
            "all-on-worker-0",
            SeedPartition::Assigned(std::sync::Arc::new(vec![0; 2048])),
        ),
    ] {
        let ex = Executor::new(
            2,
            PolicyKind::WorkStealing(StealConfig {
                seed,
                ..StealConfig::default()
            }),
        );
        let (_, r) = ex.run(
            n,
            |_| 0.0f64,
            |i, acc| *acc += emx_chem::synthetic::busy_work(50 + (i % 97) as u64),
        );
        t.push(vec![
            name.into(),
            r.total_steals().to_string(),
            r.worker_stats
                .iter()
                .map(|w| w.steal_attempts)
                .sum::<u64>()
                .to_string(),
            fmt3(r.utilization()),
        ]);
    }
    t
}

/// Ablation: the hybrid execution model — balancer-seeded work stealing.
/// A cost-model assignment removes the *predictable* imbalance up front;
/// stealing handles only the residual, slashing steal traffic.
fn ablation_hybrid_seeding(machine: &MachineModel) -> Table {
    let mut t = Table::new(
        "Ablation: balancer-seeded (hybrid) work stealing, quartet-level tasks",
        &["scenario", "configuration", "makespan", "steals"],
    );
    // Three regimes on the chunk-1 (per-quartet) decomposition:
    //  * P=16, no variability — costs are predictable, the balancer
    //    alone is optimal, the hybrid steals ~nothing;
    //  * P=16, 2 slow cores — the static assignment breaks, residual
    //    stealing routes around the slow cores and beats even the
    //    block-seeded thief;
    //  * P=64, 4 slow cores — the heaviest single quartet exceeds the
    //    balanced share, so NO scheduler helps once its worker is slow:
    //    the work-units lesson at the kernel's own granularity floor.
    let mol = emx_chem::molecule::Molecule::water_cluster(2, 42);
    let w = emx_core::prelude::estimate_fock_workload(
        &mol,
        emx_chem::basis::BasisSet::SixThirtyOneG,
        1,
        1e-10,
        1.0,
        "hybrid",
    );
    let scenarios: [(&str, usize, emx_runtime::Variability); 3] = [
        ("P=16, stable", 16, emx_runtime::Variability::None),
        (
            "P=16, 2 slow ×2",
            16,
            emx_runtime::Variability::SlowCores {
                factor: 2.0,
                count: 2,
            },
        ),
        (
            "P=64, 4 slow ×2",
            64,
            emx_runtime::Variability::SlowCores {
                factor: 2.0,
                count: 4,
            },
        ),
    ];
    for (sname, p, var) in scenarios {
        let (sm, _) = emx_core::prelude::balance(
            emx_core::prelude::BalancerKind::SemiMatching,
            &w.costs,
            p,
            None,
        );
        let cfg = emx_distsim::sim::SimConfig {
            workers: p,
            machine: *machine,
            variability: var,
            ..emx_distsim::sim::SimConfig::new(p)
        };
        for (name, model) in [
            ("static (semi-matching)", SimModel::Static(sm.clone())),
            (
                "stealing, block seed",
                SimModel::WorkStealing { steal_half: true },
            ),
            (
                "stealing, semi-matching seed",
                SimModel::SeededStealing {
                    owners: sm.clone(),
                    steal_half: true,
                },
            ),
        ] {
            let r = simulate(&w.costs, &model, &cfg);
            t.push(vec![
                sname.into(),
                name.into(),
                fmt_secs(r.makespan),
                r.steals.to_string(),
            ]);
        }
    }
    t
}

/// Ablation: incremental Fock builds make per-task costs *drift* across
/// iterations — the execution-model assumption behind persistence-based
/// balancing erodes, while work stealing is indifferent.
///
/// The table tracks, for an incremental SCF on butane: the surviving
/// quartets, ‖ΔD‖, and the load imbalance of (a) the assignment frozen
/// from the first incremental iteration vs (b) an assignment re-derived
/// from each iteration's actual costs.
fn ablation_incremental_drift() -> Table {
    use emx_chem::prelude::*;
    use emx_linalg::{jacobi_eigen, symmetric_orthogonalizer, Matrix};

    let bm = BasisedMolecule::assign(&Molecule::alkane(4), BasisSet::Sto3g);
    let tau = 1e-8;
    let pairs = ScreenedPairs::build(&bm, tau * 1e-2);
    let fb = FockBuilder::new(&bm, &pairs, tau);
    let tasks = fb.tasks(usize::MAX);
    let p_workers = 8;

    // Plain Roothaan incremental loop, collecting per-task quartets.
    let s = emx_chem::oneint::overlap(&bm);
    let h = emx_chem::oneint::core_hamiltonian(&bm);
    let x = symmetric_orthogonalizer(&s).expect("SPD overlap");
    let nocc = bm.nelectrons() / 2;
    let mut density = {
        let hp = h.congruence(&x).expect("shapes");
        let e = jacobi_eigen(&hp, 1e-12, 100).expect("eigen");
        let c = x.matmul(&e.vectors).expect("shapes");
        emx_chem::scf::density_from_mos(&c, nocc)
    };
    let mut g = Matrix::zeros(bm.nbf, bm.nbf);
    let mut d_prev = Matrix::zeros(bm.nbf, bm.nbf);
    let mut scratch = fb.scratch();

    let mut t = Table::new(
        "Ablation: incremental-Fock cost drift vs persistence balancing (C4H10, P=8)",
        &[
            "iteration",
            "quartets",
            "|dD|",
            "imbalance(frozen)",
            "imbalance(retuned)",
        ],
    );
    let mut frozen: Option<Vec<u32>> = None;
    for iter in 0..10 {
        let delta = density.sub(&d_prev).expect("shapes");
        let dmax = fb.pair_density_max(&delta);
        let mut per_task = Vec::with_capacity(tasks.len());
        for task in &tasks {
            per_task.push(
                fb.execute_density_screened(task, &delta, &dmax, &mut g, &mut scratch) as f64,
            );
        }
        d_prev = density.clone();
        let quartets: f64 = per_task.iter().sum();
        let problem = Problem::new(per_task.clone(), p_workers);
        // Freeze the assignment computed from the FIRST incremental
        // iteration's costs (iteration 1 — iteration 0 is the full
        // build that persistence schemes calibrate on).
        if iter == 1 {
            frozen = Some({
                let (a, _) = emx_core::prelude::balance(
                    emx_core::prelude::BalancerKind::SemiMatching,
                    &per_task,
                    p_workers,
                    None,
                );
                a
            });
        }
        let frozen_imb = frozen
            .as_ref()
            .map(|a| fmt3(problem.imbalance(a)))
            .unwrap_or_else(|| "-".into());
        let (retuned, _) = emx_core::prelude::balance(
            emx_core::prelude::BalancerKind::SemiMatching,
            &per_task,
            p_workers,
            None,
        );
        t.push(vec![
            iter.to_string(),
            (quartets as u64).to_string(),
            fmt3(delta.max_abs()),
            frozen_imb,
            fmt3(problem.imbalance(&retuned)),
        ]);

        // Damped Roothaan step (50 % mixing) so ΔD decays monotonically
        // and the drift is visible within a few iterations.
        let f = h.add(&g).expect("shapes");
        let fp = f.congruence(&x).expect("shapes");
        let e = jacobi_eigen(&fp, 1e-12, 100).expect("eigen");
        let c = x.matmul(&e.vectors).expect("shapes");
        let fresh = emx_chem::scf::density_from_mos(&c, nocc);
        let mut mixed = fresh.scaled(0.5);
        mixed.axpy(0.5, &density).expect("shapes");
        density = mixed;
    }
    t
}

/// Ablation: persistence-based rebalancing warm-up trajectory.
fn ablation_persistence_warmup() -> Table {
    let w = chem_workload_medium();
    let p = 16;
    let mut t = Table::new(
        "Ablation: persistence rebalancer warm-up (P=16)",
        &["iteration", "imbalance", "migrated-tasks"],
    );
    let mut assignment = block_owners(w.ntasks(), p);
    let cfg = PersistenceConfig {
        target_imbalance: 1.05,
        max_moves: usize::MAX,
    };
    for iter in 0..5 {
        let problem = Problem::new(w.costs.clone(), p);
        let before = assignment.clone();
        assignment = rebalance(&problem, &assignment, &cfg);
        t.push(vec![
            iter.to_string(),
            fmt3(problem.imbalance(&assignment)),
            movement(&before, &assignment).to_string(),
        ]);
    }
    t
}
