//! # emx-bench — shared helpers for the benchmark harness
//!
//! The criterion benches (`benches/e*.rs`) and the `reproduce` binary
//! regenerate every table and figure of the study; this library holds
//! the workload constructors they share so all targets measure the same
//! inputs.

use emx_chem::basis::BasisSet;
use emx_chem::molecule::Molecule;
use emx_chem::synthetic::CostModel;
use emx_core::prelude::*;

pub mod distsimbench;
pub mod fockbench;
pub mod obscapture;
pub mod profbench;
pub mod slug;
pub mod specbench;

pub use distsimbench::{
    bench_distsim_json, distsim_measure, distsim_smoke, DistsimBenchReport, DistsimBenchRow,
    DISTSIM_FLOOR_RATIO,
};
pub use fockbench::{fock_hotpath_measure, FockBenchReport, FockBenchRow};
pub use obscapture::{capture_observability, ObsCapture};
pub use profbench::{
    bench_obs_json, profile_fock_roster, profile_smoke, PolicyProfile, ProfileReport,
    RecordingOverhead, OVERHEAD_CEILING_FRAC,
};
pub use slug::csv_slug;
pub use specbench::{
    bench_spec_json, spec_smoke, speculate_measure, SpecBenchReport, SpecBenchRow,
};

/// The standard chemistry workload of the scaling experiments:
/// (H₂O)₂ / 6-31G, inspector-estimated costs, chunk = 8.
pub fn chem_workload_medium() -> KernelWorkload {
    estimate_fock_workload(
        &Molecule::water_cluster(2, 42),
        BasisSet::SixThirtyOneG,
        8,
        1e-10,
        1.0,
        "(H2O)2/6-31G chunk=8",
    )
}

/// A small chemistry workload for real-kernel (non-simulated) benches.
pub fn chem_workload_small() -> KernelWorkload {
    estimate_fock_workload(
        &Molecule::water(),
        BasisSet::Sto3g,
        4,
        1e-10,
        1.0,
        "H2O/STO-3G chunk=4",
    )
}

/// A large synthetic workload calibrated to the chemistry skew, for
/// cluster-scale simulations.
pub fn synthetic_workload_large(ntasks: usize) -> KernelWorkload {
    synthetic_workload(
        CostModel::LogNormal {
            mu: 0.0,
            sigma: 1.3,
        },
        ntasks,
        7,
        10.0,
        format!("lognormal-{ntasks}"),
    )
}

/// Block owners for a static partition (bench convenience).
pub fn block_owners(ntasks: usize, workers: usize) -> Vec<u32> {
    (0..ntasks)
        .map(|i| emx_runtime::block_owner(i, ntasks.max(1), workers) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_nonempty_and_deterministic() {
        let a = chem_workload_medium();
        let b = chem_workload_medium();
        assert!(a.ntasks() > 100);
        assert_eq!(a.costs, b.costs);
        let s = synthetic_workload_large(1000);
        assert_eq!(s.ntasks(), 1000);
    }

    #[test]
    fn block_owners_shape() {
        let o = block_owners(10, 3);
        assert_eq!(o.len(), 10);
        assert!(o.iter().all(|&w| w < 3));
    }
}
