//! `fock_hotpath` measurement: the real (H₂O)₂/6-31G Fock build per
//! policy × workers, reported as builds/second and ERI quartets/second.
//!
//! Unlike `sched_overhead` (empty task bodies, pure dispatch cost) this
//! measures the production kernel end to end — screening lookups, ERI
//! evaluation, scatter — so it is the number the kernel-perf trajectory
//! (`results/BENCH_fock.json`) tracks across revisions. Shared between
//! the `fock_hotpath` bench target and `reproduce fock` so both report
//! the same workload.

use emx_chem::basis::{BasisSet, BasisedMolecule};
use emx_chem::molecule::Molecule;
use emx_chem::screening::ScreenedPairs;
use emx_core::fockexec::ParallelFock;
use emx_linalg::Matrix;
use emx_runtime::{Executor, PolicyKind};
use std::time::Instant;

/// One measured (policy, workers) cell.
pub struct FockBenchRow {
    pub policy: String,
    pub workers: usize,
    pub builds_per_sec: f64,
    pub quartets_per_sec: f64,
}

/// The full measurement: workload identity plus every measured cell.
pub struct FockBenchReport {
    pub molecule: String,
    pub basis: String,
    pub nbf: usize,
    pub ntasks: usize,
    pub quartets_per_build: u64,
    pub samples: usize,
    pub rows: Vec<FockBenchRow>,
}

impl FockBenchReport {
    /// The serial-build throughput (builds/second) — the headline
    /// number the kernel trajectory compares across revisions.
    pub fn serial_builds_per_sec(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.policy == "serial")
            .map(|r| r.builds_per_sec)
    }

    /// The serial throughput of the retained *scalar* quartet kernel
    /// (`FockBuilder::execute_scalar`) on the same workload.
    pub fn scalar_serial_builds_per_sec(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.policy == "serial-scalar")
            .map(|r| r.builds_per_sec)
    }

    /// Batched-kernel speedup over the scalar kernel, serial on this
    /// host. Both arms run in the same process on the same workload, so
    /// unlike the absolute builds/s trajectory this ratio is
    /// host-independent evidence that the SoA restructure pays.
    pub fn batched_vs_scalar(&self) -> Option<f64> {
        match (
            self.serial_builds_per_sec(),
            self.scalar_serial_builds_per_sec(),
        ) {
            (Some(b), Some(s)) if s > 0.0 => Some(b / s),
            _ => None,
        }
    }
}

/// The standard hot-path workload: (H₂O)₂/6-31G, τ = 1e-10, chunk = 8,
/// pair threshold τ·1e-2 (matching `rhf_parallel`).
pub fn fock_hotpath_workload() -> (BasisedMolecule, ScreenedPairs) {
    let bm = BasisedMolecule::assign(&Molecule::water_cluster(2, 42), BasisSet::SixThirtyOneG);
    let pairs = ScreenedPairs::build(&bm, 1e-12);
    (bm, pairs)
}

/// A fixed symmetric mock density (same shape the fockexec invariance
/// tests use) so every revision measures the identical build.
pub fn mock_density(nbf: usize) -> Matrix {
    let mut d = Matrix::from_fn(nbf, nbf, |i, j| 0.2 / (1.0 + (i as f64 - j as f64).abs()));
    d.symmetrize();
    d
}

/// Measures the (H₂O)₂/6-31G Fock build for every policy of the
/// comparison roster (plus serial) at each worker count. `samples`
/// timed builds per cell, median reported, one untimed warm-up.
pub fn fock_hotpath_measure(samples: usize, worker_counts: &[usize]) -> FockBenchReport {
    let (bm, pairs) = fock_hotpath_workload();
    let tau = 1e-10;
    let pf = ParallelFock::new(&bm, &pairs, tau, 8);
    let density = mock_density(bm.nbf);

    // Quartet count of one build, measured once on the serial path.
    let mut scratch_g = Matrix::zeros(bm.nbf, bm.nbf);
    let mut scratch = pf.scratch();
    let quartets_per_build: u64 = (0..pf.ntasks())
        .map(|i| pf.execute_task_into(i, &density, &mut scratch_g, &mut scratch))
        .sum();

    let mut rows = Vec::new();

    // The retained scalar kernel, serial, same task list: the batched /
    // scalar ratio is the host-independent reading of the SoA rework.
    {
        let fb = emx_chem::fock::FockBuilder::new(&bm, &pairs, tau);
        let tasks = fb.tasks(8);
        let mut scratch = fb.scratch();
        let mut g = Matrix::zeros(bm.nbf, bm.nbf);
        for t in &tasks {
            fb.execute_scalar(t, &density, &mut g, &mut scratch);
        }
        let mut secs: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                let mut g = Matrix::zeros(bm.nbf, bm.nbf);
                let mut q = 0;
                for t in &tasks {
                    q += fb.execute_scalar(t, &density, &mut g, &mut scratch);
                }
                assert_eq!(q, quartets_per_build);
                start.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(|a, b| a.total_cmp(b));
        let median = secs[secs.len() / 2];
        rows.push(FockBenchRow {
            policy: "serial-scalar".into(),
            workers: 1,
            builds_per_sec: 1.0 / median,
            quartets_per_sec: quartets_per_build as f64 / median,
        });
    }
    for &workers in worker_counts {
        let mut roster = vec![("serial".to_string(), PolicyKind::Serial)];
        roster.extend(PolicyKind::comparison_roster(8));
        for (label, kind) in roster {
            // Serial ignores the worker count; measure it once.
            if matches!(kind, PolicyKind::Serial) && workers != 1 {
                continue;
            }
            let ex = Executor::new(workers, kind);
            // Warm-up build outside the timed samples.
            pf.execute(&density, &ex);
            let mut secs: Vec<f64> = (0..samples)
                .map(|_| {
                    let start = Instant::now();
                    let (g, r) = pf.execute(&density, &ex);
                    assert_eq!(r.total_tasks_run(), pf.ntasks());
                    assert!(g.rows() == bm.nbf);
                    start.elapsed().as_secs_f64()
                })
                .collect();
            secs.sort_by(|a, b| a.total_cmp(b));
            let median = secs[secs.len() / 2];
            rows.push(FockBenchRow {
                policy: label,
                workers,
                builds_per_sec: 1.0 / median,
                quartets_per_sec: quartets_per_build as f64 / median,
            });
        }
    }

    FockBenchReport {
        molecule: "(H2O)2".into(),
        basis: "6-31G".into(),
        nbf: bm.nbf,
        ntasks: pf.ntasks(),
        quartets_per_build,
        samples,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_measure_smoke() {
        let report = fock_hotpath_measure(1, &[1]);
        assert!(report.quartets_per_build > 1000, "screening left work");
        assert!(report.serial_builds_per_sec().unwrap() > 0.0);
        // scalar arm + serial + the 5-policy comparison roster at one
        // worker count
        assert_eq!(report.rows.len(), 7);
        assert!(report.scalar_serial_builds_per_sec().unwrap() > 0.0);
        assert!(report.batched_vs_scalar().unwrap() > 0.0);
    }
}
