//! `sched_overhead` — dispatch cost of the unified scheduling layer.
//!
//! Runs an empty task body through every policy in the roster at 1, 2,
//! 4 and 8 workers on real threads, so the number is pure scheduling
//! overhead: partition computation, counter fetches, deque traffic and
//! steal negotiation. Reported as tasks/second (higher is better).
//!
//! Besides the criterion-style console lines, writes a stamped
//! `results/BENCH_sched.json` (schema version, experiment id, git
//! describe) so the numbers are comparable across revisions.

use criterion::{BenchmarkId, Criterion};
use emx_obs::{git_describe_string, RunMeta};
use emx_runtime::{Executor, PolicyKind};
use std::time::Instant;

const NTASKS: usize = 10_000;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 7;

/// The measured roster: every policy family of the registry. Uniform
/// costs feed the persistence balancer (the bench body is empty anyway).
fn roster(workers: usize) -> Vec<(String, PolicyKind)> {
    PolicyKind::full_roster(&vec![1.0; NTASKS], workers, 8)
}

/// Median tasks/second over [`SAMPLES`] runs of `NTASKS` empty tasks.
fn tasks_per_sec(kind: &PolicyKind, workers: usize) -> f64 {
    let ex = Executor::new(workers, kind.clone());
    // One warm-up run outside the timed samples.
    ex.run(NTASKS, |_| (), |_, _| {});
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let (_, r) = ex.run(NTASKS, |_| (), |_, _| {});
            assert_eq!(r.total_tasks_run(), NTASKS);
            NTASKS as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bench_and_record(c: &mut Criterion) -> String {
    let mut rows = Vec::new();
    let mut rates: Vec<(String, usize, f64)> = Vec::new();
    let mut group = c.benchmark_group("sched_overhead");
    for workers in WORKER_COUNTS {
        for (label, kind) in roster(workers) {
            // Serial ignores the worker count; measure it once.
            if matches!(kind, PolicyKind::Serial) && workers != 1 {
                continue;
            }
            let rate = tasks_per_sec(&kind, workers);
            rates.push((label.clone(), workers, rate));
            rows.push(format!(
                "    {{\"policy\": \"{label}\", \"workers\": {workers}, \
                 \"tasks_per_sec\": {rate:.1}}}"
            ));
            let ex = Executor::new(workers, kind);
            group.bench_with_input(BenchmarkId::new(&label, workers), &NTASKS, |b, &n| {
                b.iter(|| {
                    let (_, r) = ex.run(n, |_| (), |_, _| {});
                    r.total_tasks_run()
                })
            });
        }
    }
    group.finish();

    // Work-stealing scaling floor. With empty task bodies every added
    // worker is pure contention, and on an oversubscribed host (this CI
    // box exposes a single core) absolute 1→2 speedup is not measurable
    // — but the batched completion-count publishing must keep the rate
    // from *collapsing* when a second worker joins the deques. The 0.5
    // floor is a regression tripwire for per-task `remaining` traffic,
    // not a scaling claim; EXPERIMENTS.md documents the measured bound.
    let rate_of = |policy: &str, workers: usize| {
        rates
            .iter()
            .find(|(l, w, _)| l == policy && *w == workers)
            .map(|&(_, _, r)| r)
            .expect("policy measured")
    };
    let ws1 = rate_of("work-stealing", 1);
    let ws2 = rate_of("work-stealing", 2);
    assert!(
        ws2 >= 0.5 * ws1,
        "work-stealing dispatch collapsed 1→2 workers: {ws1:.0} → {ws2:.0} tasks/s"
    );

    let meta = RunMeta::new("sched_overhead", git_describe_string());
    format!(
        "{{\n  \"schema_version\": {},\n  \"experiment\": \"{}\",\n  \
         \"git\": \"{}\",\n  \"ntasks\": {},\n  \"samples\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        meta.schema_version,
        meta.experiment_id,
        meta.git_describe,
        NTASKS,
        SAMPLES,
        rows.join(",\n")
    )
}

fn main() {
    let mut c = Criterion::default();
    let json = bench_and_record(&mut c);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_sched.json"
    );
    std::fs::write(path, json).expect("write BENCH_sched.json");
    println!("wrote {path}");
}
