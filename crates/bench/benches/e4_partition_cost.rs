//! E4 — balancer cost vs problem size.
//!
//! The "hypergraph partitioning is computationally expensive" figure:
//! balancer wall time as the task count grows. The crossover in
//! per-task cost between the multilevel partitioner and the
//! (near-linear) semi-matching/LPT balancers is the paper's point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emx_chem::synthetic::CostModel;
use emx_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_e4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_partition_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [1_000usize, 8_000] {
        let w = synthetic_workload(
            CostModel::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
            n,
            5,
            1.0,
            format!("ln-{n}"),
        );
        let affinity = synthetic_affinity(n, (n / 4).max(1), 5);
        group.throughput(Throughput::Elements(n as u64));
        for kind in BalancerKind::all() {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                b.iter(|| black_box(balance(kind, &w.costs, 16, Some(&affinity)).0.len()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
