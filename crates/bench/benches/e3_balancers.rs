//! E3 — balancer quality/throughput on the chemistry workload.
//!
//! Benchmarks each load-balancing technique computing an assignment of
//! the measured Fock-task costs (P = 16). `reproduce e3` prints the
//! quality table; this pins the balancers' compute costs.

use criterion::{criterion_group, criterion_main, Criterion};
use emx_bench::chem_workload_medium;
use emx_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_e3(c: &mut Criterion) {
    let w = chem_workload_medium();
    let mut group = c.benchmark_group("e3_balancers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for kind in [
        BalancerKind::Lpt,
        BalancerKind::KarmarkarKarp,
        BalancerKind::SemiMatching,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(balance(kind, &w.costs, 16, w.affinity.as_ref()).0.len()));
        });
    }
    // The full hypergraph partition of the 1851-task workload takes
    // seconds per run (that cost IS the E4 finding — `reproduce e4`
    // reports it); bench it on a bounded synthetic instance so the
    // whole suite stays runnable.
    let n = 1000;
    let ws = emx_core::prelude::synthetic_workload(
        emx_chem::synthetic::CostModel::LogNormal {
            mu: 0.0,
            sigma: 1.0,
        },
        n,
        5,
        1.0,
        "ln-1k",
    );
    let affinity = synthetic_affinity(n, n / 4, 5);
    group.bench_function("hypergraph-1k", |b| {
        b.iter(|| {
            black_box(
                balance(BalancerKind::Hypergraph, &ws.costs, 16, Some(&affinity))
                    .0
                    .len(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
