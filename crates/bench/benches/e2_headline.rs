//! E2 — the headline comparison on the *real* kernel.
//!
//! Measures actual wall time of one Fock build under the serial,
//! static and work-stealing thread runtimes. (On a single-core host the
//! absolute multi-worker numbers reflect oversubscription; the DES
//! regenerates the scaling figure — this bench pins the real kernel and
//! runtime overhead costs.)

use criterion::{criterion_group, criterion_main, Criterion};
use emx_chem::prelude::*;
use emx_core::prelude::*;
use emx_linalg::Matrix;
use std::hint::black_box;
use std::time::Duration;

fn bench_e2(c: &mut Criterion) {
    let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::Sto3g);
    let pairs = ScreenedPairs::build(&bm, 1e-12);
    let pf = ParallelFock::new(&bm, &pairs, 1e-10, 4);
    let mut d = Matrix::from_fn(bm.nbf, bm.nbf, |i, j| {
        0.3 / (1.0 + (i as f64 - j as f64).abs())
    });
    d.symmetrize();

    let mut group = c.benchmark_group("e2_headline_real_kernel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for (name, ex) in [
        ("serial", Executor::new(1, PolicyKind::Serial)),
        ("static-block-p2", Executor::new(2, PolicyKind::StaticBlock)),
        (
            "work-stealing-p2",
            Executor::new(2, PolicyKind::WorkStealing(StealConfig::default())),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(pf.execute(&d, &ex).0.frobenius_norm()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
