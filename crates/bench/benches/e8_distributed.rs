//! E8 — distributed-scale projection.
//!
//! The simulator at cluster scale (up to 4096 ranks) on a large
//! calibrated workload; `reproduce e8` prints the table with makespans
//! and utilization, this bench tracks the simulator's scalability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emx_bench::{block_owners, synthetic_workload_large};
use emx_distsim::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_e8(c: &mut Criterion) {
    let w = synthetic_workload_large(100_000);
    let mut group = c.benchmark_group("e8_distributed");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for p in [256usize, 1024, 4096] {
        let cfg = SimConfig::new(p);
        group.bench_with_input(BenchmarkId::new("static", p), &p, |b, &p| {
            let model = SimModel::Static(block_owners(w.ntasks(), p));
            b.iter(|| black_box(simulate(&w.costs, &model, &cfg).makespan));
        });
        group.bench_with_input(BenchmarkId::new("counter", p), &p, |b, _| {
            b.iter(|| {
                black_box(simulate(&w.costs, &SimModel::Counter { chunk: 16 }, &cfg).makespan)
            });
        });
        group.bench_with_input(BenchmarkId::new("stealing", p), &p, |b, _| {
            b.iter(|| {
                black_box(
                    simulate(&w.costs, &SimModel::WorkStealing { steal_half: true }, &cfg).makespan,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
