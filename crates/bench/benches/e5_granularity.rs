//! E5 — task granularity vs runtime overhead.
//!
//! Two measurements: (a) the simulated counter model across chunk sizes
//! (interior optimum), and (b) the *real* thread runtime's per-task
//! dispatch cost at different chunk sizes — the overhead half of the
//! trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emx_bench::synthetic_workload_large;
use emx_chem::synthetic::busy_work;
use emx_distsim::prelude::*;
use emx_runtime::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_sim_chunks(c: &mut Criterion) {
    let w = synthetic_workload_large(8192);
    let cfg = SimConfig::new(64);
    let mut group = c.benchmark_group("e5_sim_counter_chunk");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for chunk in [1usize, 8, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| black_box(simulate(&w.costs, &SimModel::Counter { chunk }, &cfg).makespan));
        });
    }
    group.finish();
}

fn bench_real_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_real_counter_dispatch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let n = 4096;
    for chunk in [1usize, 16, 256] {
        let ex = Executor::new(2, PolicyKind::DynamicCounter { chunk });
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, _| {
            b.iter(|| {
                let (locals, _) = ex.run(n, |_| 0.0f64, |_, acc| *acc += busy_work(20));
                black_box(locals.iter().sum::<f64>())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_chunks, bench_real_dispatch);
criterion_main!(benches);
