//! E6 — execution models under energy-induced performance variability.
//!
//! Simulated makespans for static vs work stealing under the study's
//! variability scenarios; `reproduce e6` prints the full table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emx_bench::{block_owners, synthetic_workload_large};
use emx_distsim::prelude::*;
use emx_runtime::Variability;
use std::hint::black_box;
use std::time::Duration;

fn bench_e6(c: &mut Criterion) {
    let w = synthetic_workload_large(4096);
    let p = 16;
    let scenarios: Vec<(&str, Variability)> = vec![
        ("none", Variability::None),
        (
            "uniform",
            Variability::PerCoreUniform {
                spread: 0.6,
                seed: 3,
            },
        ),
        (
            "slow-cores",
            Variability::SlowCores {
                factor: 2.0,
                count: 2,
            },
        ),
        (
            "dvfs",
            Variability::Sinusoidal {
                amplitude: 0.5,
                period: Duration::from_millis(50),
            },
        ),
    ];
    let mut group = c.benchmark_group("e6_variability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (name, var) in scenarios {
        let cfg = SimConfig {
            workers: p,
            variability: var,
            ..SimConfig::new(p)
        };
        let static_model = SimModel::Static(block_owners(w.ntasks(), p));
        group.bench_with_input(BenchmarkId::new("static", name), &name, |b, _| {
            b.iter(|| black_box(simulate(&w.costs, &static_model, &cfg).makespan));
        });
        group.bench_with_input(BenchmarkId::new("stealing", name), &name, |b, _| {
            b.iter(|| {
                black_box(
                    simulate(&w.costs, &SimModel::WorkStealing { steal_half: true }, &cfg).makespan,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
