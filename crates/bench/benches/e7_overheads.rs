//! E7 — runtime-overhead microbenchmarks (real code paths).
//!
//! Pins the cost of the mechanisms the execution models are built from:
//! per-task dispatch of each scheduler, NXTVAL counter fetches, GA
//! one-sided accumulates (local vs remote block), and the ERI compute
//! kernel itself at different shell classes.

use criterion::{criterion_group, criterion_main, Criterion};
use emx_chem::basis::{BasisSet, BasisedMolecule};
use emx_chem::eri::eri_quartet;
use emx_chem::molecule::Molecule;
use emx_chem::shellpair::ShellPair;
use emx_distsim::prelude::*;
use emx_runtime::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_dispatch_per_task");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let n = 10_000;
    for (name, model) in [
        ("static-block", PolicyKind::StaticBlock),
        ("counter-c1", PolicyKind::DynamicCounter { chunk: 1 }),
        ("counter-c64", PolicyKind::DynamicCounter { chunk: 64 }),
        (
            "work-stealing",
            PolicyKind::WorkStealing(StealConfig::default()),
        ),
    ] {
        let ex = Executor::new(2, model);
        group.bench_function(name, |b| {
            b.iter(|| {
                let (_, r) = ex.run(n, |_| (), |_, _| {});
                black_box(r.total_tasks_run())
            });
        });
    }
    group.finish();
}

fn bench_nxtval(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_nxtval");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let counter = NxtVal::new();
    group.bench_function("fetch", |b| b.iter(|| black_box(counter.next(1))));
    group.finish();
}

fn bench_ga(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ga_acc");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let ga = GlobalArray::zeros(64, 64, 4);
    let patch = vec![1.0; 16 * 64];
    // Rows 0..16 belong to rank 0: local for caller 0, remote for 3.
    group.bench_function("local-block", |b| {
        b.iter(|| ga.acc(0, 0, 0, 16, 64, 1.0, black_box(&patch)))
    });
    group.bench_function("remote-block", |b| {
        b.iter(|| ga.acc(3, 0, 0, 16, 64, 1.0, black_box(&patch)))
    });
    group.finish();
}

fn bench_eri(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_eri_kernel");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::SixThirtyOneG);
    // Shell 0: deep-contracted s; shells 2: p — bench contrasting
    // quartet classes (the cost-skew source).
    let pair_ss = ShellPair::build(0, &bm.shells[0], 0, &bm.shells[0], 0);
    let pair_pp = ShellPair::build(2, &bm.shells[2], 2, &bm.shells[2], 0);
    group.bench_function("ssss-deep", |b| {
        b.iter(|| black_box(eri_quartet(&pair_ss, &pair_ss, &bm.shells)[0]))
    });
    group.bench_function("pppp", |b| {
        b.iter(|| black_box(eri_quartet(&pair_pp, &pair_pp, &bm.shells)[0]))
    });
    group.finish();
}

fn bench_post_hf_kernels(c: &mut Criterion) {
    use emx_chem::prelude::*;
    use emx_linalg::Matrix;
    let mut group = c.benchmark_group("e7_post_hf_kernels");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::Sto3g);
    let pairs = ScreenedPairs::build(&bm, 1e-12);
    let fb = FockBuilder::new(&bm, &pairs, 1e-10);
    let tasks = fb.tasks(usize::MAX);
    let mut d = Matrix::from_fn(bm.nbf, bm.nbf, |i, j| {
        0.3 / (1.0 + (i as f64 - j as f64).abs())
    });
    d.symmetrize();
    // The UHF iteration runs two generalized J/K builds per step.
    group.bench_function("rhf-fock-build", |b| {
        b.iter(|| {
            let mut g = Matrix::zeros(bm.nbf, bm.nbf);
            let mut scratch = fb.scratch();
            for t in &tasks {
                fb.execute(t, &d, &mut g, &mut scratch);
            }
            black_box(g.frobenius_norm())
        })
    });
    group.bench_function("uhf-jk-build", |b| {
        b.iter(|| {
            let mut g = Matrix::zeros(bm.nbf, bm.nbf);
            let mut scratch = fb.scratch();
            for t in &tasks {
                fb.execute_jk(t, &d, &d, 1.0, &mut g, &mut scratch);
            }
            black_box(g.frobenius_norm())
        })
    });
    // The MP2 AO→MO transform — the N⁵ workload family.
    let ao = emx_chem::mp2::full_eri_tensor(&bm);
    let c_id = Matrix::identity(bm.nbf);
    group.bench_function("mp2-ao-to-mo", |b| {
        b.iter(|| black_box(emx_chem::mp2::ao_to_mo(&ao, &c_id).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dispatch,
    bench_nxtval,
    bench_ga,
    bench_eri,
    bench_post_hf_kernels
);
criterion_main!(benches);
