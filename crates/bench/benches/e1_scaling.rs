//! E1 — strong scaling of execution models (simulated cluster).
//!
//! Benchmarks the simulated makespan computation of each execution
//! model at two scales on the measured chemistry cost distribution.
//! The *results* (makespans, the paper's figure) come from
//! `reproduce e1`; this bench tracks the simulator's own throughput so
//! regressions in the harness are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emx_bench::{block_owners, chem_workload_medium};
use emx_distsim::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_e1(c: &mut Criterion) {
    let w = chem_workload_medium();
    let mut group = c.benchmark_group("e1_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for p in [4usize, 64] {
        let cfg = SimConfig::new(p);
        let models: Vec<(&str, SimModel)> = vec![
            (
                "static-block",
                SimModel::Static(block_owners(w.ntasks(), p)),
            ),
            ("counter", SimModel::Counter { chunk: 8 }),
            ("guided", SimModel::Guided { min_chunk: 1 }),
            ("work-stealing", SimModel::WorkStealing { steal_half: true }),
            (
                "hier-stealing",
                SimModel::HierarchicalStealing {
                    steal_half: true,
                    node_size: 16,
                    remote_factor: 10.0,
                },
            ),
        ];
        for (name, model) in models {
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
                b.iter(|| black_box(simulate(&w.costs, &model, &cfg).makespan));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
