//! `fock_hotpath` — the kernel-perf trajectory benchmark.
//!
//! Runs the real (H₂O)₂/6-31G Fock build (screening, ERI evaluation,
//! scatter, reduction) under every comparison-roster policy at 1, 2 and
//! 4 workers, and writes a stamped `results/BENCH_fock.json` so kernel
//! throughput is comparable across revisions. The committed baseline
//! block pins the pre-scratch-rework serial throughput; later revisions
//! are held to it.
//!
//! `EMX_FOCK_SMOKE=1` shrinks the run (2 samples, 1–2 workers) for CI;
//! the smoke run skips the same-machine trajectory assertions (the
//! baselines were recorded on the development host) but still asserts
//! the host-independent batched-vs-scalar kernel ratio, so CI catches a
//! regression of the SoA restructure itself.

use emx_bench::fockbench::fock_hotpath_measure;
use emx_obs::{git_describe_string, RunMeta};

const SAMPLES: usize = 5;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const SMOKE_SAMPLES: usize = 2;
const SMOKE_WORKERS: [usize; 2] = [1, 2];

/// Pre-rework serial baseline: recorded on the development host at the
/// revision *before* the scratch-buffer ERI/Boys-table overhaul, with
/// this same harness (5 samples, median). Kept in the JSON so the
/// trajectory's origin travels with every later measurement.
const BASELINE_GIT: &str = "aef2bf7";
const BASELINE_SERIAL_BUILDS_PER_SEC: f64 = 6.587;
const BASELINE_SERIAL_QUARTETS_PER_SEC: f64 = 86104.0;

/// Serial throughput stamped in `results/BENCH_fock.json` immediately
/// before the batched SoA kernel landed (scalar `eri_quartet_into`
/// path, same harness, same host). The batched kernel must hold at
/// least [`BATCHED_FLOOR_FACTOR`]× this — the asserted floor of the
/// SoA restructure (the measured landing was ~2.5×).
const PRE_BATCH_SERIAL_BUILDS_PER_SEC: f64 = 16.52;
const BATCHED_FLOOR_FACTOR: f64 = 2.0;

/// Host-independent floor on the batched/scalar same-process ratio —
/// asserted even in smoke runs, where absolute builds/s means nothing.
const BATCHED_VS_SCALAR_FLOOR: f64 = 1.3;

fn main() {
    let smoke = std::env::var("EMX_FOCK_SMOKE").is_ok();
    let (samples, workers): (usize, &[usize]) = if smoke {
        (SMOKE_SAMPLES, &SMOKE_WORKERS)
    } else {
        (SAMPLES, &WORKER_COUNTS)
    };

    let report = fock_hotpath_measure(samples, workers);
    let mut rows = Vec::new();
    for r in &report.rows {
        println!(
            "fock_hotpath/{}/{}w: {:.2} builds/s ({:.3e} quartets/s)",
            r.policy, r.workers, r.builds_per_sec, r.quartets_per_sec
        );
        rows.push(format!(
            "    {{\"policy\": \"{}\", \"workers\": {}, \
             \"builds_per_sec\": {:.3}, \"quartets_per_sec\": {:.1}}}",
            r.policy, r.workers, r.builds_per_sec, r.quartets_per_sec
        ));
    }

    let serial = report
        .serial_builds_per_sec()
        .expect("roster includes serial");
    let speedup = if BASELINE_SERIAL_BUILDS_PER_SEC > 0.0 {
        serial / BASELINE_SERIAL_BUILDS_PER_SEC
    } else {
        f64::NAN
    };
    println!("serial speedup vs {BASELINE_GIT} baseline: {speedup:.2}x");
    let vs_scalar = report
        .batched_vs_scalar()
        .expect("report includes the scalar arm");
    println!("batched kernel vs scalar kernel (serial, same process): {vs_scalar:.2}x");
    // The ratio of two same-process arms is host-independent, so it is
    // asserted even in smoke/CI runs.
    assert!(
        vs_scalar > BATCHED_VS_SCALAR_FLOOR,
        "batched kernel only {vs_scalar:.2}x over scalar \
         (floor {BATCHED_VS_SCALAR_FLOOR}x)"
    );
    if !smoke && BASELINE_SERIAL_BUILDS_PER_SEC > 0.0 {
        // Same-machine trajectory floor: the scratch/Boys-table rework
        // bought >1.5x; never regress below 1.2x of the old kernel.
        assert!(
            speedup > 1.2,
            "serial Fock throughput regressed to {speedup:.2}x of the \
             pre-rework baseline (floor 1.2x)"
        );
        // Batched-SoA floor: hold ≥2x of the stamped pre-batch serial
        // throughput on the development host.
        let floor = BATCHED_FLOOR_FACTOR * PRE_BATCH_SERIAL_BUILDS_PER_SEC;
        assert!(
            serial >= floor,
            "serial Fock throughput {serial:.2} builds/s fell below the \
             batched-kernel floor {floor:.2} ({BATCHED_FLOOR_FACTOR}x the \
             pre-batch {PRE_BATCH_SERIAL_BUILDS_PER_SEC})"
        );
    }

    let meta = RunMeta::new("fock_hotpath", git_describe_string());
    let json = format!(
        "{{\n  \"schema_version\": {},\n  \"experiment\": \"{}\",\n  \
         \"git\": \"{}\",\n  \"molecule\": \"{}\",\n  \"basis\": \"{}\",\n  \
         \"nbf\": {},\n  \"ntasks\": {},\n  \"quartets_per_build\": {},\n  \
         \"samples\": {},\n  \"baseline\": {{\"git\": \"{}\", \
         \"serial_builds_per_sec\": {:.3}, \"serial_quartets_per_sec\": {:.1}}},\n  \
         \"serial_speedup_vs_baseline\": {:.3},\n  \
         \"pre_batch_serial_builds_per_sec\": {:.3},\n  \
         \"serial_floor_builds_per_sec\": {:.3},\n  \
         \"batched_vs_scalar\": {:.3},\n  \"results\": [\n{}\n  ]\n}}\n",
        meta.schema_version,
        meta.experiment_id,
        meta.git_describe,
        report.molecule,
        report.basis,
        report.nbf,
        report.ntasks,
        report.quartets_per_build,
        report.samples,
        BASELINE_GIT,
        BASELINE_SERIAL_BUILDS_PER_SEC,
        BASELINE_SERIAL_QUARTETS_PER_SEC,
        speedup,
        PRE_BATCH_SERIAL_BUILDS_PER_SEC,
        BATCHED_FLOOR_FACTOR * PRE_BATCH_SERIAL_BUILDS_PER_SEC,
        vs_scalar,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_fock.json");
    std::fs::write(path, json).expect("write BENCH_fock.json");
    println!("wrote {path}");
}
