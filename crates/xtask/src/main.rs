//! `cargo xtask` — the repository's lint wall.
//!
//! `cargo xtask lint` runs nine families of checks that rustc and
//! clippy cannot express, and exits non-zero on any finding:
//!
//! 1. **Replay-path hygiene** — the deterministic replay paths
//!    (`emx-sched`, the simulator, fault injection, the analyzer) must
//!    not read the wall clock (`Instant::now`, `SystemTime`) or ambient
//!    randomness (`thread_rng`, `from_entropy`, `OsRng`): any of those
//!    would make `replay_assignment` and `simulate_with_faults`
//!    unreproducible. Instrumentation-only exceptions are listed
//!    explicitly in [`WALL_CLOCK_ALLOW`].
//! 2. **Roster coverage** — every [`PolicyKind`] variant must be
//!    reachable from the analyzer's verification roster, so adding a
//!    variant without wiring it into verification fails the gate.
//! 3. **Experiment registration** — every experiment id matched by the
//!    `reproduce` binary must be runnable from its default list (or be
//!    an explicitly-listed on-demand id), and vice versa, so dead or
//!    unregistered experiments cannot accumulate silently.
//! 4. **Hot-path allocation hygiene** — the ERI quartet inner-loop
//!    modules ([`HOT_PATH_FILES`]) must not grow `Vec` allocations in
//!    their non-test code: the whole point of the scratch-buffer API is
//!    that a warmed Fock build performs zero heap traffic (enforced
//!    dynamically by `crates/chem/tests/alloc_guard.rs`; this lint
//!    catches the regression at review time). Setup-time allocations
//!    are listed in [`HOT_PATH_ALLOC_ALLOW`].
//! 5. **Observability hygiene** — the always-on profiling path is the
//!    fixed-capacity event ring; the `Vec`-backed `CollectingSink` is a
//!    test/export convenience and must never be referenced from the
//!    steal or quartet inner loops ([`NO_COLLECTING_SINK_FILES`]): a
//!    mutex-guarded `Vec` push per event would put allocation and
//!    cross-core traffic back inside the measured region.
//! 6. **Doc-link integrity** — every relative markdown link in
//!    `README.md` and `docs/*.md` must resolve to an existing file
//!    (fragments stripped, absolute URLs and pure anchors skipped), so
//!    renaming or dropping a document cannot leave dangling references
//!    behind.
//! 7. **Pair-data reuse** — the quartet hot-path modules
//!    ([`NO_PAIR_REBUILD_FILES`]) must not construct shell-pair data
//!    (`ShellPair::build`, `HermiteE::build`) in non-test code: all `E`
//!    tables are precomputed once per pair at screening time (AoS and
//!    batched SoA forms), and rebuilding them inside a quartet or
//!    tensor loop silently multiplies the per-pair recurrence cost by
//!    the quartet count — exactly the regression the old
//!    `full_eri_tensor` shipped with.
//! 8. **Memory-protocol conformance (emx-srclint)** — a real static
//!    pass (lexer + site extractor, not a grep): every atomic
//!    operation and `unsafe` occurrence in the workspace is modeled
//!    and checked against the declared protocols in
//!    `docs/protocols.toml` — required orderings per role, exact
//!    fence/store sequences (the PR-6 seqlock bug class), Acquire/
//!    Release pairing, Relaxed-needs-a-role, and `// SAFETY:` hygiene.
//!    `cargo xtask srclint --json <path>` additionally writes the full
//!    machine-readable site inventory + report (the CI artifact).
//! 9. **Event-core discipline** — the simulator loops
//!    ([`NO_BINARYHEAP_FILES`]) must schedule through the shared
//!    [`emx_distsim`] `EventQueue` abstraction, never a raw
//!    `BinaryHeap`: per-site heaps are how the `(time, worker)`
//!    tie-break divergence shipped, and a direct heap bypasses both the
//!    total `(time, seq)` order and the calendar-queue backend that
//!    keeps 10⁴–10⁵-rank simulations inside seconds.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Source roots whose code must be wall-clock- and ambient-RNG-free.
const REPLAY_PATH_ROOTS: &[&str] = &[
    "crates/sched/src",
    "crates/analyze/src",
    "crates/distsim/src/sim.rs",
    "crates/distsim/src/faults.rs",
    "crates/distsim/src/eventq.rs",
    "crates/balance/src",
];

/// `file:substring` pairs exempt from the wall-clock lint (metrics
/// timestamps on non-replay paths, with the burden of proof on the
/// entry).
const WALL_CLOCK_ALLOW: &[(&str, &str)] = &[
    // The 10⁴-rank scale regression tests bound their own wall clock —
    // measurement around the simulation, never inside the replay path.
    ("sim.rs", "let t0 = std::time::Instant::now();"),
    ("faults.rs", "let t0 = std::time::Instant::now();"),
];

/// Experiment ids legitimately absent from `reproduce`'s default list
/// (on-demand modes).
const ON_DEMAND_EXPERIMENTS: &[&str] = &["smoke", "fock", "profile", "speculate", "distsim"];

/// Files whose non-test code forms the ERI quartet inner loop and must
/// stay free of per-call `Vec` allocation.
const HOT_PATH_FILES: &[&str] = &[
    "crates/chem/src/eri.rs",
    "crates/chem/src/eribatch.rs",
    "crates/chem/src/md.rs",
];

/// `file:substring` pairs exempt from the hot-path allocation lint —
/// one-time setup, never per-quartet work.
const HOT_PATH_ALLOC_ALLOW: &[(&str, &str)] = &[
    // EriScratch pre-sizing: allocates once per worker, before the loop.
    ("eri.rs", "block: Vec::with_capacity"),
    // Hermite E-table construction: runs once per *shell pair* when the
    // screened pair list is built, not per quartet.
    ("md.rs", "data: vec![0.0;"),
    // Static Hermite component/index tables: built once per process
    // inside OnceLock initializers, then only read.
    ("md.rs", "Vec::with_capacity(2 * PAIR_L_MAX"),
    ("md.rs", "Vec::with_capacity(hermite_count"),
    ("md.rs", "Vec::with_capacity((PAIR_L_MAX"),
    ("md.rs", "Vec::with_capacity(bras.len()"),
];

/// Files whose non-test code forms the steal and quartet inner loops:
/// the per-span `Vec`-push `CollectingSink` must not appear in any of
/// them (the event ring is the sanctioned always-on capture there).
const NO_COLLECTING_SINK_FILES: &[&str] = &[
    "crates/runtime/src/pool.rs",
    "crates/chem/src/eri.rs",
    "crates/chem/src/eribatch.rs",
    "crates/chem/src/md.rs",
    "crates/chem/src/fock.rs",
];

/// Simulator-loop files whose non-test code must use the shared
/// `EventQueue` event core, never a raw `BinaryHeap` (the tie-break
/// and scale story lives in `crates/distsim/src/eventq.rs`; the one
/// sanctioned `BinaryHeap` is the oracle backend inside it).
const NO_BINARYHEAP_FILES: &[&str] = &["crates/distsim/src/sim.rs", "crates/distsim/src/faults.rs"];

/// Files whose non-test code sits inside (or feeds) the quartet loops
/// and must read precomputed pair data instead of rebuilding it.
const NO_PAIR_REBUILD_FILES: &[&str] = &[
    "crates/chem/src/eri.rs",
    "crates/chem/src/eribatch.rs",
    "crates/chem/src/fock.rs",
    "crates/chem/src/mp2.rs",
];

fn repo_root() -> PathBuf {
    // xtask always runs via `cargo xtask` from inside the workspace.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").expect("run via cargo");
    Path::new(&manifest)
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the root")
        .to_path_buf()
}

fn rust_sources(root: &Path, rel: &str) -> Vec<PathBuf> {
    let path = root.join(rel);
    if path.is_file() {
        return vec![path];
    }
    let mut out = Vec::new();
    let mut stack = vec![path];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn scan_for(
    root: &Path,
    roots: &[&str],
    needles: &[&str],
    allow: &[(&str, &str)],
    what: &str,
    findings: &mut Vec<String>,
) {
    for rel in roots {
        for file in rust_sources(root, rel) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let shown = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            for (lineno, line) in text.lines().enumerate() {
                let code = line.split("//").next().unwrap_or(line);
                for needle in needles {
                    if code.contains(needle)
                        && !allow
                            .iter()
                            .any(|(f, s)| shown.ends_with(f) && line.contains(s))
                    {
                        findings.push(format!(
                            "{shown}:{}: {what}: `{needle}` in a replay path",
                            lineno + 1
                        ));
                    }
                }
            }
        }
    }
}

fn lint_replay_hygiene(root: &Path, findings: &mut Vec<String>) {
    lint_replay_hygiene_at(root, REPLAY_PATH_ROOTS, findings);
}

fn lint_replay_hygiene_at(root: &Path, roots: &[&str], findings: &mut Vec<String>) {
    scan_for(
        root,
        roots,
        &["Instant::now", "SystemTime"],
        WALL_CLOCK_ALLOW,
        "wall clock",
        findings,
    );
    scan_for(
        root,
        roots,
        &["thread_rng", "from_entropy", "OsRng", "rand::random"],
        &[],
        "ambient randomness",
        findings,
    );
}

fn lint_roster_coverage(findings: &mut Vec<String>) {
    use emx_analyze::verifier::{verification_roster, VerifierConfig};
    use emx_sched::PolicyKind;

    let cfg = VerifierConfig::default();
    let roster = verification_roster(&cfg);
    let covered: Vec<&str> = roster.iter().map(|k| k.name()).collect();
    let full: Vec<(String, String)> = PolicyKind::full_roster(&cfg.costs(), cfg.workers, cfg.chunk)
        .into_iter()
        .map(|(label, kind)| (label.to_string(), kind.name().to_string()))
        .collect();
    roster_coverage_core(PolicyKind::canonical_names(), &covered, &full, findings);
}

/// Core of lint 2, injectable for the fixture tests: `canonical` is
/// the policy registry, `covered` the verification roster, `full` the
/// paper-facing `(label, kind-name)` roster.
fn roster_coverage_core(
    canonical: &[&str],
    covered: &[&str],
    full: &[(String, String)],
    findings: &mut Vec<String>,
) {
    for name in canonical {
        if !covered.contains(name) {
            findings.push(format!(
                "roster coverage: PolicyKind variant `{name}` is not in the \
                 analyzer's verification roster"
            ));
        }
    }
    // The paper-facing full roster must stay a subset of the canonical
    // registry (no orphaned display names).
    for (label, kind) in full {
        if !canonical.contains(&kind.as_str()) {
            findings.push(format!(
                "roster coverage: full_roster entry `{label}` has unregistered \
                 kind `{kind}`"
            ));
        }
    }
}

fn quoted_idents(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        let ident = &tail[..close];
        if !ident.is_empty()
            && ident
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            out.push(ident.to_string());
        }
        rest = &tail[close + 1..];
    }
    out
}

fn lint_experiment_registration(root: &Path, findings: &mut Vec<String>) {
    let path = root.join("crates/bench/src/bin/reproduce.rs");
    let Ok(text) = std::fs::read_to_string(&path) else {
        findings.push("experiment registration: cannot read reproduce.rs".into());
        return;
    };
    experiment_registration_core(&text, &path.display().to_string(), findings);
}

/// Core of lint 3, injectable for the fixture tests: parses the given
/// `reproduce.rs` source text instead of reading it from disk.
fn experiment_registration_core(text: &str, shown: &str, findings: &mut Vec<String>) {
    // The default experiment list: quoted ids between `wanted = vec![`
    // and the closing `];`.
    let mut defaults = Vec::new();
    let mut in_defaults = false;
    // Match arms of `match exp.as_str()`: `"id" => ...` lines.
    let mut arms = Vec::new();
    let mut in_match = false;
    for line in text.lines() {
        if line.contains("wanted = vec![") {
            in_defaults = true;
        }
        if in_defaults {
            defaults.extend(quoted_idents(line));
            if line.contains(']') && !line.contains("vec![") {
                in_defaults = false;
            }
        }
        if line.contains("match exp.as_str()") {
            in_match = true;
            continue;
        }
        if in_match {
            let t = line.trim_start();
            if let Some(arrow) = t.find("=>") {
                let head = &t[..arrow];
                if head.starts_with('"') {
                    arms.extend(quoted_idents(head));
                } else if head.starts_with("other") || head.starts_with('_') {
                    in_match = false;
                }
            }
        }
    }

    if defaults.is_empty() || arms.is_empty() {
        findings.push(format!(
            "experiment registration: failed to parse {shown} (defaults {}, arms {})",
            defaults.len(),
            arms.len()
        ));
        return;
    }
    for d in &defaults {
        if !arms.contains(d) {
            findings.push(format!(
                "experiment registration: default experiment `{d}` has no match \
                 arm in reproduce.rs"
            ));
        }
    }
    for a in &arms {
        if !defaults.contains(a) && !ON_DEMAND_EXPERIMENTS.contains(&a.as_str()) {
            findings.push(format!(
                "experiment registration: experiment `{a}` is matched but neither \
                 in the default list nor declared on-demand"
            ));
        }
    }
}

/// Lint 4: no `Vec` allocation in the quartet inner-loop modules'
/// non-test code (everything before the first `#[cfg(test)]` line —
/// both the test-only reference kernel and the test module sit below
/// it by construction).
fn lint_hotpath_allocations(root: &Path, findings: &mut Vec<String>) {
    hotpath_allocations_at(root, HOT_PATH_FILES, HOT_PATH_ALLOC_ALLOW, findings);
}

fn hotpath_allocations_at(
    root: &Path,
    files: &[&str],
    allow: &[(&str, &str)],
    findings: &mut Vec<String>,
) {
    const NEEDLES: &[&str] = &[
        "vec![",
        "Vec::new",
        "with_capacity",
        ".to_vec()",
        ".collect()",
    ];
    for rel in files {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            findings.push(format!("hot-path allocations: cannot read {rel}"));
            continue;
        };
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let code = line.split("//").next().unwrap_or(line);
            for needle in NEEDLES {
                if code.contains(needle)
                    && !allow
                        .iter()
                        .any(|(f, s)| rel.ends_with(f) && line.contains(s))
                {
                    findings.push(format!(
                        "{rel}:{}: hot-path allocation: `{needle}` in a quartet \
                         inner-loop module (use the scratch buffers, or add a \
                         justified allow entry)",
                        lineno + 1
                    ));
                }
            }
        }
    }
}

/// Lint 5: `CollectingSink` (mutex + `Vec` push per span) may not be
/// referenced from the steal/quartet inner-loop modules' non-test code
/// — always-on capture there goes through the fixed-capacity event
/// rings instead.
fn lint_no_collecting_sink(root: &Path, findings: &mut Vec<String>) {
    collecting_sink_at(root, NO_COLLECTING_SINK_FILES, findings);
}

fn collecting_sink_at(root: &Path, files: &[&str], findings: &mut Vec<String>) {
    for rel in files {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            findings.push(format!("observability hygiene: cannot read {rel}"));
            continue;
        };
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let code = line.split("//").next().unwrap_or(line);
            if code.contains("CollectingSink") {
                findings.push(format!(
                    "{rel}:{}: observability hygiene: `CollectingSink` in an \
                     inner-loop module (record into the event ring instead)",
                    lineno + 1
                ));
            }
        }
    }
}

/// The markdown files whose relative links lint 6 checks: the README
/// plus everything under `docs/`.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("README.md")];
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "md") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Every `](target)` markdown-link target on one line, in order.
fn markdown_link_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(i) = rest.find("](") {
        let tail = &rest[i + 2..];
        let Some(close) = tail.find(')') else { break };
        out.push(tail[..close].trim().to_string());
        rest = &tail[close + 1..];
    }
    out
}

/// Lint 6: every relative markdown link in the README and `docs/*.md`
/// must resolve (relative to the containing file) after stripping any
/// `#fragment`. Absolute URLs, `mailto:` and pure in-page anchors are
/// out of scope; fenced code blocks are skipped so example syntax
/// cannot false-positive.
fn lint_doc_links(root: &Path, findings: &mut Vec<String>) {
    for file in doc_files(root) {
        let Ok(text) = std::fs::read_to_string(&file) else {
            findings.push(format!("doc links: cannot read {}", file.display()));
            continue;
        };
        let dir = file.parent().unwrap_or(root).to_path_buf();
        let shown = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .display()
            .to_string();
        let mut in_fence = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in markdown_link_targets(line) {
                if target.is_empty()
                    || target.starts_with('#')
                    || target.contains("://")
                    || target.starts_with("mailto:")
                {
                    continue;
                }
                let path_part = target.split('#').next().unwrap_or(target.as_str());
                if path_part.is_empty() {
                    continue;
                }
                if !dir.join(path_part).exists() {
                    findings.push(format!(
                        "{shown}:{}: doc link: `{target}` does not resolve to an \
                         existing file",
                        lineno + 1
                    ));
                }
            }
        }
    }
}

/// Lint 7: shell-pair data may not be rebuilt in the quartet hot-path
/// modules' non-test code — `ShellPair::build` and `HermiteE::build`
/// belong to pair-list construction (`screening.rs`, `shellpair.rs`,
/// one-electron setup), never inside quartet or tensor loops.
fn lint_no_pair_rebuild(root: &Path, findings: &mut Vec<String>) {
    pair_rebuild_at(root, NO_PAIR_REBUILD_FILES, findings);
}

fn pair_rebuild_at(root: &Path, files: &[&str], findings: &mut Vec<String>) {
    const NEEDLES: &[&str] = &["ShellPair::build", "HermiteE::build"];
    for rel in files {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            findings.push(format!("pair-data reuse: cannot read {rel}"));
            continue;
        };
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let code = line.split("//").next().unwrap_or(line);
            for needle in NEEDLES {
                if code.contains(needle) {
                    findings.push(format!(
                        "{rel}:{}: pair-data reuse: `{needle}` in a quartet \
                         hot-path module (read the precomputed ScreenedPairs \
                         cache instead)",
                        lineno + 1
                    ));
                }
            }
        }
    }
}

/// Lint 9: simulator loops must schedule through the shared
/// `EventQueue` event core. A raw `BinaryHeap` in `sim.rs`/`faults.rs`
/// non-test code reintroduces per-site keys — the exact path the
/// `(time, worker)` tie-break divergence shipped through — and skips
/// the calendar backend entirely.
fn lint_no_binaryheap(root: &Path, findings: &mut Vec<String>) {
    binaryheap_at(root, NO_BINARYHEAP_FILES, findings);
}

fn binaryheap_at(root: &Path, files: &[&str], findings: &mut Vec<String>) {
    for rel in files {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            findings.push(format!("event-core discipline: cannot read {rel}"));
            continue;
        };
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let code = line.split("//").next().unwrap_or(line);
            if code.contains("BinaryHeap") {
                findings.push(format!(
                    "{rel}:{}: event-core discipline: `BinaryHeap` in a \
                     simulator loop (schedule through `EventQueue` — the heap \
                     oracle lives behind it in eventq.rs)",
                    lineno + 1
                ));
            }
        }
    }
}

/// Lint 8: the whole-workspace memory-protocol pass. Runs the
/// emx-srclint extractor + checker against `docs/protocols.toml` and
/// folds every violation into the lint wall. A failure to run the pass
/// at all (missing manifest, parse error) is itself a finding.
fn lint_srclint(root: &Path, findings: &mut Vec<String>) {
    match emx_srclint::run(root) {
        Ok(outcome) => {
            for v in &outcome.report.violations {
                findings.push(format!(
                    "srclint: [{}] {}: {}",
                    v.kind.name(),
                    v.scenario,
                    v.detail
                ));
            }
        }
        Err(e) => findings.push(format!("srclint: {e}")),
    }
}

fn run_lints() -> Vec<String> {
    let root = repo_root();
    let mut findings = Vec::new();
    lint_replay_hygiene(&root, &mut findings);
    lint_roster_coverage(&mut findings);
    lint_experiment_registration(&root, &mut findings);
    lint_hotpath_allocations(&root, &mut findings);
    lint_no_collecting_sink(&root, &mut findings);
    lint_doc_links(&root, &mut findings);
    lint_no_pair_rebuild(&root, &mut findings);
    lint_no_binaryheap(&root, &mut findings);
    lint_srclint(&root, &mut findings);
    findings
}

/// `cargo xtask srclint [--json <path>]` — run only the
/// memory-protocol pass, print a human summary, and (with `--json`)
/// write the full machine-readable site inventory + report for CI to
/// archive.
fn run_srclint(json_path: Option<&str>) -> ExitCode {
    let root = repo_root();
    let outcome = match emx_srclint::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask srclint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = json_path {
        let json = outcome.to_json().to_json_string();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("xtask srclint: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("xtask srclint: wrote {path}");
    }
    println!(
        "xtask srclint: {} files, {} atomic site(s), {} unsafe site(s), \
         {} protocol(s)",
        outcome.inventory.files_scanned,
        outcome.inventory.sites.len(),
        outcome.inventory.unsafes.len(),
        outcome.manifest.protocols.len()
    );
    if outcome.report.is_clean() {
        println!(
            "xtask srclint: clean ({} check(s) passed)",
            outcome.report.passed.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &outcome.report.violations {
            eprintln!("srclint: [{}] {}: {}", v.kind.name(), v.scenario, v.detail);
        }
        eprintln!(
            "xtask srclint: {} violation(s)",
            outcome.report.violations.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let findings = run_lints();
            if findings.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("srclint") => {
            let json_path = match args.get(1).map(String::as_str) {
                Some("--json") => match args.get(2) {
                    Some(p) => Some(p.as_str()),
                    None => {
                        eprintln!("usage: cargo xtask srclint [--json <path>]");
                        return ExitCode::FAILURE;
                    }
                },
                Some(other) => {
                    eprintln!("unknown srclint flag `{other}`");
                    eprintln!("usage: cargo xtask srclint [--json <path>]");
                    return ExitCode::FAILURE;
                }
                None => None,
            };
            run_srclint(json_path)
        }
        _ => {
            eprintln!("usage: cargo xtask lint | cargo xtask srclint [--json <path>]");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_wall_is_clean() {
        assert_eq!(run_lints(), Vec::<String>::new());
    }

    #[test]
    fn quoted_ident_extraction() {
        assert_eq!(
            quoted_idents(r#"  "e1" | "e2" => run(),"#),
            vec!["e1".to_string(), "e2".to_string()]
        );
        assert!(quoted_idents("no strings here").is_empty());
    }

    #[test]
    fn markdown_link_target_extraction() {
        assert_eq!(
            markdown_link_targets("see [a](docs/A.md) and ![img](x.png#frag)"),
            vec!["docs/A.md".to_string(), "x.png#frag".to_string()]
        );
        assert!(markdown_link_targets("no links [here] (space)").is_empty());
    }

    #[test]
    fn doc_link_lint_flags_dangling_and_accepts_valid() {
        let dir = std::env::temp_dir().join("xtask-doclink-selftest");
        let docs = dir.join("docs");
        std::fs::create_dir_all(&docs).unwrap();
        std::fs::write(dir.join("README.md"), "[ok](docs/GOOD.md)\n").unwrap();
        std::fs::write(
            docs.join("GOOD.md"),
            "[up](../README.md#anchor)\n[web](https://example.com/x.md)\n\
             [anchor](#local)\n```\n[fenced](MISSING.md)\n```\n[bad](GONE.md)\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_doc_links(&dir, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("GONE.md"), "{findings:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scanner_flags_seeded_violations() {
        let dir = std::env::temp_dir().join("xtask-lint-selftest");
        let src = dir.join("bad/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "fn f() { let t = std::time::Instant::now(); }\n// Instant::now in a comment is fine\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        scan_for(
            &dir,
            &["bad/src"],
            &["Instant::now"],
            &[],
            "wall clock",
            &mut findings,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("lib.rs:1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    // ---- per-family seeded fixtures: each lint family must fire on a
    // ---- deliberately bad snippet, so a silently-dead lint is caught.

    /// A throwaway fixture tree under the system temp dir, removed on drop.
    struct Fixture(PathBuf);
    impl Fixture {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("xtask-fixture-{name}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            Fixture(dir)
        }
        fn write(&self, rel: &str, text: &str) {
            let path = self.0.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, text).unwrap();
        }
    }
    impl Drop for Fixture {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn replay_hygiene_flags_seeded_randomness() {
        let fx = Fixture::new("replay");
        fx.write(
            "crates/bad/src/lib.rs",
            "fn f() -> u64 { rand::random() }\n",
        );
        let mut findings = Vec::new();
        lint_replay_hygiene_at(&fx.0, &["crates/bad/src"], &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("ambient randomness"), "{findings:?}");
    }

    #[test]
    fn roster_coverage_flags_uncovered_and_orphaned() {
        let mut findings = Vec::new();
        roster_coverage_core(
            &["static", "stealing"],
            &["static"], // "stealing" missing from the verification roster
            &[("Exotic".into(), "exotic".into())], // not in the registry
            &mut findings,
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].contains("`stealing`"), "{findings:?}");
        assert!(findings[1].contains("`exotic`"), "{findings:?}");
    }

    #[test]
    fn experiment_registration_flags_unmatched_and_unregistered() {
        let text = "\
let wanted = vec![
    \"alpha\",
    \"beta\",
];
match exp.as_str() {
    \"alpha\" => run_alpha(),
    \"gamma\" => run_gamma(),
    other => die(other),
}
";
        let mut findings = Vec::new();
        experiment_registration_core(text, "fixture.rs", &mut findings);
        // `beta` is a default with no arm; `gamma` has an arm but is
        // neither a default nor declared on-demand.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].contains("`beta`"), "{findings:?}");
        assert!(findings[1].contains("`gamma`"), "{findings:?}");
    }

    #[test]
    fn hotpath_allocation_lint_flags_seeded_vec() {
        let fx = Fixture::new("hotpath");
        fx.write(
            "crates/bad/src/eri.rs",
            "fn quartet() { let v: Vec<f64> = Vec::new(); }\n\
             #[cfg(test)]\n\
             mod tests { fn t() { let w = vec![1.0]; } }\n",
        );
        let mut findings = Vec::new();
        hotpath_allocations_at(&fx.0, &["crates/bad/src/eri.rs"], &[], &mut findings);
        // The Vec::new before #[cfg(test)] fires; the vec![ after it is
        // exempt (test-only reference kernels live below that marker).
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("Vec::new"), "{findings:?}");
        // ...and an allow entry silences it.
        let mut allowed = Vec::new();
        hotpath_allocations_at(
            &fx.0,
            &["crates/bad/src/eri.rs"],
            &[("eri.rs", "Vec::new()")],
            &mut allowed,
        );
        assert!(allowed.is_empty(), "{allowed:?}");
    }

    #[test]
    fn collecting_sink_lint_flags_seeded_reference() {
        let fx = Fixture::new("sink");
        fx.write(
            "crates/bad/src/pool.rs",
            "fn steal() { let s = CollectingSink::default(); }\n",
        );
        let mut findings = Vec::new();
        collecting_sink_at(&fx.0, &["crates/bad/src/pool.rs"], &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("CollectingSink"), "{findings:?}");
    }

    #[test]
    fn pair_rebuild_lint_flags_seeded_build() {
        let fx = Fixture::new("pair");
        fx.write(
            "crates/bad/src/fock.rs",
            "fn quartet(a: &Shell, b: &Shell) { let p = ShellPair::build(a, b); }\n",
        );
        let mut findings = Vec::new();
        pair_rebuild_at(&fx.0, &["crates/bad/src/fock.rs"], &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("ShellPair::build"), "{findings:?}");
    }

    #[test]
    fn binaryheap_lint_flags_seeded_heap_but_not_tests() {
        let fx = Fixture::new("binheap");
        fx.write(
            "crates/bad/src/sim.rs",
            "use std::collections::BinaryHeap;\n\
             fn run() { let h: BinaryHeap<u64> = BinaryHeap::new(); }\n\
             #[cfg(test)]\n\
             mod tests { fn t() { let _h: std::collections::BinaryHeap<u64> = Default::default(); } }\n",
        );
        let mut findings = Vec::new();
        binaryheap_at(&fx.0, &["crates/bad/src/sim.rs"], &mut findings);
        // Both non-test lines fire; the #[cfg(test)] reference is exempt.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].contains("BinaryHeap"), "{findings:?}");
    }

    #[test]
    fn srclint_family_reports_run_errors_as_findings() {
        // Pointing the pass at a tree with no manifest must surface as
        // a finding, not a silent pass.
        let fx = Fixture::new("srclint");
        fx.write("crates/empty/src/lib.rs", "pub fn nothing() {}\n");
        let mut findings = Vec::new();
        lint_srclint(&fx.0, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].starts_with("srclint:"), "{findings:?}");
    }
}
