//! Minimal JSON value: writer plus a strict recursive-descent parser.
//!
//! The workspace builds with no registry access, so the exporters cannot
//! use serde; this module is the small honest subset they need. Objects
//! preserve insertion order, which keeps every exported file
//! byte-deterministic for a given input.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (serialized as an integer when exactly integral).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Field lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                pos,
                msg: "trailing garbage",
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; exporters clamp to null.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError {
            pos: *pos,
            msg: "unexpected token",
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError {
            pos: *pos,
            msg: "unexpected end of input",
        }),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(ParseError {
                            pos: *pos,
                            msg: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError {
                        pos: *pos,
                        msg: "expected ':'",
                    });
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(ParseError {
                            pos: *pos,
                            msg: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError {
            pos: *pos,
            msg: "expected string",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(ParseError {
                    pos: *pos,
                    msg: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(ParseError {
                            pos: *pos,
                            msg: "bad \\u escape",
                        })?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError {
                                pos: *pos,
                                msg: "bad \\u escape",
                            })?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            pos: *pos,
                            msg: "bad escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or(ParseError {
            pos: start,
            msg: "invalid number",
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::obj(vec![
            ("name", Json::Str("steal \"latency\"".into())),
            ("count", Json::Num(42.0)),
            ("ratio", Json::Num(0.5)),
            ("tags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = v.to_json_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert!(text.contains("\"count\":42,"));
    }

    #[test]
    fn parses_nested_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , { } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\nb\u{1}".into());
        let text = v.to_json_string();
        assert_eq!(text, "\"a\\nb\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_json_string(), "null");
    }
}
