//! # emx-obs — unified observability layer
//!
//! The paper's argument is built on *observing* runtime behaviour:
//! utilization, steal traffic, shared-counter contention, per-phase SCF
//! cost. This crate is the one place that behaviour is captured and
//! exported from, shared by the thread runtime, the distributed
//! simulator, the chemistry kernel and the `reproduce` harness:
//!
//! * [`recorder`] — per-worker span recorders with a pluggable
//!   [`recorder::EventSink`]. Each worker owns its buffer (no locks or
//!   atomics on the record path) and flushes once at the end of a run.
//!   With no sink attached a recorder is [`recorder::SpanRecorder::Off`]
//!   and `record()` is a branch on a two-variant enum; with the
//!   `compile-out` feature it is statically empty.
//! * [`metrics`] — a registry of named counters, gauges and log₂-bucketed
//!   histograms. Handles are `Arc`s that hot paths clone up front and
//!   update with relaxed atomics; the registry lock is touched only at
//!   registration and snapshot time.
//! * [`ring`] — bounded per-worker SPSC profiling event rings: the
//!   always-on capture path (fixed capacity, overwrite-oldest, no
//!   allocation after setup), sharing one event schema between the
//!   thread runtime and the discrete-event simulator.
//! * [`attrib`] — critical-path extraction and blame attribution over
//!   those event streams: wall time split into compute / counter /
//!   steal / merge / idle per worker, plus differential comparison of
//!   two runs.
//! * [`chrome`] — Chrome trace-event JSON (the `chrome://tracing` /
//!   Perfetto format) built from any per-worker interval data.
//! * [`speedscope`] — speedscope JSON and collapsed-stack (flamegraph)
//!   exports of the same event streams.
//! * [`export`] — JSONL and CSV metric snapshots, stamped with a schema
//!   version, experiment id and git-describe string.
//! * [`json`] — the minimal JSON value type backing the exporters (the
//!   workspace builds offline, so no serde).
//!
//! ## Example
//!
//! ```
//! use emx_obs::prelude::*;
//!
//! let registry = MetricsRegistry::new();
//! let steals = registry.counter("runtime.steals", "count");
//! let latency = registry.histogram("runtime.steal_latency", "ns");
//! steals.inc();
//! latency.record(1_500);
//! let meta = RunMeta::new("demo", "v0");
//! let jsonl = metrics_to_jsonl(&meta, &registry.snapshot(), &[]);
//! assert!(jsonl.lines().count() >= 3);
//! ```

pub mod attrib;
pub mod chrome;
pub mod export;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod ring;
pub mod speedscope;

pub use attrib::{Attribution, AttributionDiff, WorkerBlame};
pub use chrome::{ChromeTrace, TraceSpan};
pub use export::{git_describe_string, metrics_to_csv, metrics_to_jsonl, RunMeta, SCHEMA_VERSION};
pub use json::Json;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricValue, MetricsRegistry,
};
pub use recorder::{CollectingSink, EventSink, NullSink, SpanEvent, SpanRecorder};
pub use ring::{EventKind, EventRing, ProfEvent, RingSet, RingSnapshot, RingWriter};
pub use speedscope::{collapsed_stacks, speedscope_json};

/// Common imports.
pub mod prelude {
    pub use crate::attrib::{Attribution, AttributionDiff, WorkerBlame};
    pub use crate::chrome::ChromeTrace;
    pub use crate::export::{
        git_describe_string, metrics_to_csv, metrics_to_jsonl, RunMeta, SCHEMA_VERSION,
    };
    pub use crate::json::Json;
    pub use crate::metrics::{
        Counter, Gauge, Histogram, MetricEntry, MetricValue, MetricsRegistry,
    };
    pub use crate::recorder::{CollectingSink, EventSink, NullSink, SpanEvent, SpanRecorder};
    pub use crate::ring::{EventKind, EventRing, ProfEvent, RingSet, RingWriter};
    pub use crate::speedscope::{collapsed_stacks, speedscope_json};
}
