//! JSONL / CSV metric snapshots, stamped and schema-versioned.
//!
//! Every exported metrics file is self-describing: the first JSONL
//! record (or leading `#` comment lines in CSV) carries the schema
//! version, the experiment id and a git-describe string, so a results
//! directory can be read years later without the producing binary.
//!
//! ## JSONL schema (version 1)
//!
//! One JSON object per line, discriminated by `"record"`:
//!
//! * `{"record":"meta","schema_version":1,"experiment":…,"git":…}` —
//!   always the first line, exactly once.
//! * `{"record":"metric","name":…,"kind":"counter","unit":…,"value":…}`
//! * `{"record":"metric","name":…,"kind":"gauge","unit":…,"value":…}`
//! * `{"record":"metric","name":…,"kind":"histogram","unit":…,
//!    "count":…,"sum":…,"min":…,"max":…,"p50":…,"p90":…,"p99":…,
//!    "buckets":[[upper,count],…]}`
//! * Producer-specific records (e.g. `"record":"scf_iter"`) may follow;
//!   consumers must skip unknown `record` values.
//!
//! The schema version increments only on breaking changes to the
//! records above; adding new record types or optional fields is
//! non-breaking.

use crate::json::Json;
use crate::metrics::{MetricEntry, MetricValue};

/// Version of the JSONL/CSV metric schema documented in this module.
pub const SCHEMA_VERSION: u32 = 1;

/// Identity stamp attached to every exported file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Experiment id (`e2`, `obs`, `validate`, …).
    pub experiment_id: String,
    /// `git describe` output of the producing tree (or `"unknown"`).
    pub git_describe: String,
    /// Schema version of the emitted records.
    pub schema_version: u32,
}

impl RunMeta {
    /// Stamp for `experiment_id` at the current schema version.
    pub fn new(experiment_id: impl Into<String>, git_describe: impl Into<String>) -> RunMeta {
        RunMeta {
            experiment_id: experiment_id.into(),
            git_describe: git_describe.into(),
            schema_version: SCHEMA_VERSION,
        }
    }

    /// The `"record":"meta"` JSONL header line.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("record", Json::Str("meta".into())),
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("experiment", Json::Str(self.experiment_id.clone())),
            ("git", Json::Str(self.git_describe.clone())),
        ])
    }
}

/// `git describe --always --dirty` of the working tree, `"unknown"` when
/// git is unavailable (deterministic for a given commit state).
pub fn git_describe_string() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn metric_to_json(entry: &MetricEntry) -> Json {
    let mut fields = vec![
        ("record".to_string(), Json::Str("metric".into())),
        ("name".to_string(), Json::Str(entry.name.clone())),
    ];
    match &entry.value {
        MetricValue::Counter(v) => {
            fields.push(("kind".to_string(), Json::Str("counter".into())));
            fields.push(("unit".to_string(), Json::Str(entry.unit.clone())));
            fields.push(("value".to_string(), Json::Num(*v as f64)));
        }
        MetricValue::Gauge(v) => {
            fields.push(("kind".to_string(), Json::Str("gauge".into())));
            fields.push(("unit".to_string(), Json::Str(entry.unit.clone())));
            fields.push(("value".to_string(), Json::Num(*v)));
        }
        MetricValue::Histogram(h) => {
            fields.push(("kind".to_string(), Json::Str("histogram".into())));
            fields.push(("unit".to_string(), Json::Str(entry.unit.clone())));
            fields.push(("count".to_string(), Json::Num(h.count as f64)));
            fields.push(("sum".to_string(), Json::Num(h.sum as f64)));
            fields.push(("min".to_string(), Json::Num(h.min as f64)));
            fields.push(("max".to_string(), Json::Num(h.max as f64)));
            fields.push(("p50".to_string(), Json::Num(h.p50 as f64)));
            fields.push(("p90".to_string(), Json::Num(h.p90 as f64)));
            fields.push(("p99".to_string(), Json::Num(h.p99 as f64)));
            fields.push((
                "buckets".to_string(),
                Json::Arr(
                    h.buckets
                        .iter()
                        .map(|&(upper, n)| {
                            Json::Arr(vec![Json::Num(upper as f64), Json::Num(n as f64)])
                        })
                        .collect(),
                ),
            ));
        }
    }
    Json::Obj(fields)
}

/// Serializes a metrics snapshot (plus any producer-specific `extra`
/// records) to JSONL, meta header first.
pub fn metrics_to_jsonl(meta: &RunMeta, entries: &[MetricEntry], extra: &[Json]) -> String {
    let mut out = String::new();
    out.push_str(&meta.to_json().to_json_string());
    out.push('\n');
    for entry in entries {
        out.push_str(&metric_to_json(entry).to_json_string());
        out.push('\n');
    }
    for record in extra {
        out.push_str(&record.to_json_string());
        out.push('\n');
    }
    out
}

/// Serializes a metrics snapshot to CSV with `#` header comments
/// carrying the stamp. Histograms are flattened to their summary
/// columns.
pub fn metrics_to_csv(meta: &RunMeta, entries: &[MetricEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# schema_version: {}\n", meta.schema_version));
    out.push_str(&format!("# experiment: {}\n", meta.experiment_id));
    out.push_str(&format!("# git: {}\n", meta.git_describe));
    out.push_str("name,kind,unit,value,count,sum,min,max,p50,p90,p99\n");
    for entry in entries {
        match &entry.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{},counter,{},{},,,,,,,\n",
                    entry.name, entry.unit, v
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{},gauge,{},{},,,,,,,\n",
                    entry.name, entry.unit, v
                ));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{},histogram,{},,{},{},{},{},{},{},{}\n",
                    entry.name, entry.unit, h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_entries() -> Vec<MetricEntry> {
        let reg = MetricsRegistry::new();
        reg.counter("runtime.steals", "count").add(7);
        reg.set_gauge("runtime.utilization", "ratio", 0.875);
        let h = reg.histogram("runtime.steal_latency", "ns");
        h.record(100);
        h.record(9000);
        reg.snapshot()
    }

    #[test]
    fn jsonl_has_meta_first_and_parses() {
        let meta = RunMeta::new("e2", "abc1234");
        let text = metrics_to_jsonl(
            &meta,
            &sample_entries(),
            &[Json::obj(vec![("record", Json::Str("scf_iter".into()))])],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let head = Json::parse(lines[0]).unwrap();
        assert_eq!(head.get("record").unwrap().as_str(), Some("meta"));
        assert_eq!(head.get("schema_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(head.get("experiment").unwrap().as_str(), Some("e2"));
        for line in &lines[1..] {
            assert!(Json::parse(line).is_ok(), "bad line: {line}");
        }
        // Sorted snapshot: steal_latency < steals < utilization.
        let hist = Json::parse(lines[1]).unwrap();
        assert_eq!(hist.get("kind").unwrap().as_str(), Some("histogram"));
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn csv_is_stamped() {
        let meta = RunMeta::new("obs", "v1-2-gdeadbee");
        let text = metrics_to_csv(&meta, &sample_entries());
        assert!(text.starts_with("# schema_version: 1\n"));
        assert!(text.contains("# experiment: obs\n"));
        assert!(text.contains("# git: v1-2-gdeadbee\n"));
        assert!(text.contains("runtime.steals,counter,count,7,"));
        assert!(text.contains("runtime.steal_latency,histogram,ns,,2,"));
    }

    #[test]
    fn git_describe_never_empty() {
        assert!(!git_describe_string().is_empty());
    }
}
