//! Metrics registry: counters, gauges, log₂-bucketed histograms.
//!
//! Hot paths obtain `Arc` handles once (at executor/run setup) and
//! update them with relaxed atomics; the registry's lock is only taken
//! at registration and snapshot time, never inside a task loop. Names
//! are dot-separated (`runtime.steal_latency`), units are free-form
//! strings recorded at registration (`ns`, `count`, `s`, `bytes`) —
//! see `DESIGN.md` for the metric naming table.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets in a [`Histogram`] (covers the full u64 range).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

// All orderings here are governed by protocol `obs-counters` role
// `counter` (docs/protocols.toml): Relaxed is the discipline, because
// snapshots are best-effort and no payload is published through these
// cells.
impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point value.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

// Protocol `obs-counters` role `counter` (docs/protocols.toml).
impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, x: f64) {
        self.bits.store(x.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Log₂-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Bucket `i` counts samples whose floor(log₂) is `i − 1` (bucket 0 is
/// exactly-zero samples), so the upper bound of bucket `i > 0` is
/// `2^i − 1`. Recording is two relaxed `fetch_add`s plus a min/max
/// update — cheap enough for per-steal and per-fetch call sites.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

// Protocol `obs-counters` role `counter` (docs/protocols.toml): the
// five cells are updated independently, so a concurrent snapshot can
// mix sample generations — accepted for observability data.
impl Histogram {
    /// Index of the bucket for `value`.
    #[inline]
    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a `Duration` as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let upper = if i == 0 { 0 } else { (1u128 << i) as u64 - 1 };
                Some((upper, n))
            })
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let min = if count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        };
        let max = self.max.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: percentile(&buckets, count, min, max, 0.50),
            p90: percentile(&buckets, count, min, max, 0.90),
            p99: percentile(&buckets, count, min, max, 0.99),
            buckets,
        }
    }
}

/// Bucket-resolution percentile with in-bucket interpolation.
///
/// The requested rank is `ceil(q·count)` (1-based, matching a sorted
/// vector's `sorted[rank−1]`). Rank 1 and rank `count` return the exact
/// tracked `min`/`max`. Interior ranks interpolate linearly across the
/// rank's log₂ bucket `[2^(i−1), 2^i − 1]` and clamp to `[min, max]`,
/// so a value landing exactly on a power-of-two edge — the lower bound
/// of its bucket — no longer gets reported a full bucket high: a
/// histogram of identical samples reports every quantile as that exact
/// value. The estimate always stays inside the true percentile's
/// bucket.
fn percentile(buckets: &[(u64, u64)], count: u64, min: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
    if rank == 1 {
        return min;
    }
    if rank == count {
        return max;
    }
    let mut seen = 0;
    for &(upper, n) in buckets {
        if seen + n >= rank {
            let lower = if upper == 0 { 0 } else { upper / 2 + 1 };
            let k = rank - seen; // 1-based rank within this bucket
            let est = if n == 1 {
                // A lone sample carries no shape information: split the
                // bucket (the clamp below pins it when min/max agree).
                lower + (upper - lower) / 2
            } else {
                // Model the bucket's samples as evenly spaced from its
                // lower to its upper bound.
                lower + ((k - 1) as u128 * (upper - lower) as u128 / (n - 1) as u128) as u64
            };
            return est.clamp(min, max);
        }
        seen += n;
    }
    max
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (bucket-interpolated, clamped to `[min, max]`).
    pub p50: u64,
    /// 90th percentile (bucket-interpolated, clamped to `[min, max]`).
    pub p90: u64,
    /// 99th percentile (bucket-interpolated, clamped to `[min, max]`).
    pub p99: u64,
    /// Non-empty `(bucket_upper_bound, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A metric's current value, by kind.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Dot-separated metric name.
    pub name: String,
    /// Unit string given at registration.
    pub unit: String,
    /// Current value.
    pub value: MetricValue,
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Registered {
    unit: String,
    slot: Slot,
}

/// Registry of named metrics. Cheap to clone handles out of; snapshots
/// are sorted by name, so exports are deterministic.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Registered>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn counter(&self, name: &str, unit: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().expect("registry poisoned");
        let entry = map.entry(name.to_string()).or_insert_with(|| Registered {
            unit: unit.to_string(),
            slot: Slot::Counter(Arc::new(Counter::default())),
        });
        match &entry.slot {
            Slot::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge(&self, name: &str, unit: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().expect("registry poisoned");
        let entry = map.entry(name.to_string()).or_insert_with(|| Registered {
            unit: unit.to_string(),
            slot: Slot::Gauge(Arc::new(Gauge::default())),
        });
        match &entry.slot {
            Slot::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a histogram.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn histogram(&self, name: &str, unit: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().expect("registry poisoned");
        let entry = map.entry(name.to_string()).or_insert_with(|| Registered {
            unit: unit.to_string(),
            slot: Slot::Histogram(Arc::new(Histogram::default())),
        });
        match &entry.slot {
            Slot::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Sets a gauge in one call (registers it on first use).
    pub fn set_gauge(&self, name: &str, unit: &str, value: f64) {
        self.gauge(name, unit).set(value);
    }

    /// Current values of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricEntry> {
        let map = self.inner.lock().expect("registry poisoned");
        map.iter()
            .map(|(name, reg)| MetricEntry {
                name: name.clone(),
                unit: reg.unit.clone(),
                value: match &reg.slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.count", "count");
        c.inc();
        c.add(4);
        reg.set_gauge("a.util", "ratio", 0.75);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].value, MetricValue::Counter(5));
        assert_eq!(snap[1].value, MetricValue::Gauge(0.75));
    }

    #[test]
    fn same_name_returns_same_handle() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", "count");
        let b = reg.counter("x", "count");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", "count");
        reg.gauge("x", "ratio");
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.sum, 101_106);
        // p50 of 7 samples is the 4th (value 3) → interpolates to 3.
        assert_eq!(s.p50, 3);
        // p99's rank is the final sample, reported exactly.
        assert_eq!(s.p99, 100_000);
        // Buckets are ascending and sum to the count.
        let total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 7);
        assert!(s.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50, s.p99), (0, 0, 0, 0, 0));
        assert!(s.buckets.is_empty());
    }

    /// The boundary bug this pins down: a sample sitting exactly on a
    /// power-of-two edge is the *lower* bound of its log₂ bucket, so
    /// reporting the bucket's upper bound shifted every quantile a full
    /// bucket (≈2×) high. Identical-sample histograms must now report
    /// the exact value at every quantile.
    #[test]
    fn power_of_two_edge_does_not_shift_quantiles() {
        for v in [1u64, 2, 4, 1024, 1 << 20, (1 << 20) + 1] {
            let h = Histogram::default();
            for _ in 0..100 {
                h.record(v);
            }
            let s = h.snapshot();
            assert_eq!((s.p50, s.p90, s.p99), (v, v, v), "value {v}");
        }
    }

    /// Deterministic xorshift-free generator for the property tests.
    struct SplitMix(u64);
    impl SplitMix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Property: against a sorted-vector oracle (`sorted[⌈q·n⌉−1]`),
    /// every reported quantile (a) lies within `[min, max]`, (b) lies
    /// within the oracle value's own log₂ bucket, (c) is exact at the
    /// extreme ranks, and (d) quantiles are monotone in `q`.
    #[test]
    fn quantiles_pinned_against_sorted_oracle() {
        let mut rng = SplitMix(0x0b5e_c0de);
        for trial in 0..200 {
            let n = 1 + (rng.next() % 400) as usize;
            // Mix of scales so buckets of every width appear, with
            // deliberate power-of-two edge values sprinkled in.
            let samples: Vec<u64> = (0..n)
                .map(|_| match rng.next() % 4 {
                    0 => rng.next() % 16,
                    1 => 1 << (rng.next() % 30),
                    2 => rng.next() % 10_000,
                    _ => rng.next() % 10_000_000,
                })
                .collect();
            let h = Histogram::default();
            for &v in &samples {
                h.record(v);
            }
            let s = h.snapshot();
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let oracle = |q: f64| {
                let rank = ((n as f64 * q).ceil() as usize).clamp(1, n);
                sorted[rank - 1]
            };
            for (q, got) in [(0.50, s.p50), (0.90, s.p90), (0.99, s.p99)] {
                let want = oracle(q);
                assert!(
                    got >= s.min && got <= s.max,
                    "trial {trial} q={q}: {got} outside [{}, {}]",
                    s.min,
                    s.max
                );
                let upper = if want == 0 {
                    0
                } else {
                    (1u128 << (64 - want.leading_zeros())) as u64 - 1
                };
                let lower = if upper == 0 { 0 } else { upper / 2 + 1 };
                assert!(
                    got >= lower.min(s.max) && got <= upper.max(s.min),
                    "trial {trial} q={q}: {got} outside oracle bucket [{lower}, {upper}] (oracle {want})"
                );
            }
            assert_eq!(s.p99.max(s.p90).max(s.p50), s.p99, "monotone");
            assert_eq!(s.p50.min(s.p90).min(s.p99), s.p50, "monotone");
            // Extreme ranks are exact.
            assert_eq!(oracle(1.0 / n as f64), s.min);
            assert_eq!(oracle(1.0), s.max);
        }
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(Histogram::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
