//! Per-worker span recorders with a pluggable sink.
//!
//! Each worker owns one [`SpanRecorder`]: recording a span is a bounds
//! check and a `Vec::push` into worker-local memory — no locks, no
//! atomics, no cross-core traffic inside the measured region. The
//! buffer is handed to the shared [`EventSink`] exactly once, when the
//! recorder is flushed (or dropped) after the timed region ends.
//!
//! Disabling is free: a recorder without a sink is the `Off` variant and
//! `record()` is one predictable branch. Building `emx-obs` with the
//! `compile-out` feature turns even `SpanRecorder::on` into `Off`, so
//! instrumented binaries can be produced with the recorder statically
//! removed.

use std::sync::{Arc, Mutex};

/// One recorded span on a worker-local timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static label (`"task"`, `"steal"`, `"idle"`, `"fock"`, …).
    pub name: &'static str,
    /// Track the span belongs to (worker or rank index).
    pub track: u32,
    /// Start, nanoseconds from the run's origin.
    pub start_ns: u64,
    /// End, nanoseconds from the run's origin.
    pub end_ns: u64,
}

/// Receiver of flushed span buffers. Implementations must be cheap to
/// call once per worker per run, not once per span.
pub trait EventSink: Send + Sync {
    /// Accepts one worker's events (called at flush, outside the timed
    /// region).
    fn accept(&self, events: &[SpanEvent]);
}

/// Sink that discards everything (for overhead measurements).
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn accept(&self, _events: &[SpanEvent]) {}
}

/// Sink that collects all events for later export.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<SpanEvent>>,
}

impl CollectingSink {
    /// Creates an empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Takes every event collected so far, sorted by `(track, start)`.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut events = std::mem::take(&mut *self.events.lock().expect("sink poisoned"));
        events.sort_by_key(|e| (e.track, e.start_ns, e.end_ns));
        events
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for CollectingSink {
    fn accept(&self, events: &[SpanEvent]) {
        self.events
            .lock()
            .expect("sink poisoned")
            .extend_from_slice(events);
    }
}

/// A per-worker event recorder; `Off` records nothing.
pub enum SpanRecorder {
    /// Recording disabled: `record` is a no-op.
    Off,
    /// Recording into a worker-local buffer, flushed to `sink`.
    On {
        /// Track id stamped onto every event.
        track: u32,
        /// Worker-local buffer.
        buf: Vec<SpanEvent>,
        /// Destination for the flushed buffer.
        sink: Arc<dyn EventSink>,
    },
}

impl SpanRecorder {
    /// A disabled recorder.
    pub fn off() -> SpanRecorder {
        SpanRecorder::Off
    }

    /// A recorder for `track` flushing into `sink` (disabled entirely
    /// under the `compile-out` feature).
    pub fn on(track: u32, sink: Arc<dyn EventSink>) -> SpanRecorder {
        #[cfg(feature = "compile-out")]
        {
            let _ = (track, sink);
            SpanRecorder::Off
        }
        #[cfg(not(feature = "compile-out"))]
        {
            SpanRecorder::On {
                track,
                buf: Vec::new(),
                sink,
            }
        }
    }

    /// Whether spans are being kept.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, SpanRecorder::On { .. })
    }

    /// Records one span; no-op when off.
    #[inline]
    pub fn record(&mut self, name: &'static str, start_ns: u64, end_ns: u64) {
        if let SpanRecorder::On { track, buf, .. } = self {
            buf.push(SpanEvent {
                name,
                track: *track,
                start_ns,
                end_ns,
            });
        }
    }

    /// Hands the buffer to the sink and clears it.
    pub fn flush(&mut self) {
        if let SpanRecorder::On { buf, sink, .. } = self {
            if !buf.is_empty() {
                sink.accept(buf);
                buf.clear();
            }
        }
    }
}

impl Drop for SpanRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_keeps_nothing() {
        let mut r = SpanRecorder::off();
        r.record("task", 0, 10);
        assert!(!r.is_on());
        r.flush();
    }

    #[cfg(not(feature = "compile-out"))]
    #[test]
    fn events_reach_sink_on_flush() {
        let sink = Arc::new(CollectingSink::new());
        {
            let mut r = SpanRecorder::on(3, sink.clone());
            r.record("task", 5, 9);
            r.record("idle", 9, 12);
            assert!(sink.is_empty(), "no flush inside the timed region");
        } // drop flushes
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            SpanEvent {
                name: "task",
                track: 3,
                start_ns: 5,
                end_ns: 9
            }
        );
    }

    #[cfg(not(feature = "compile-out"))]
    #[test]
    fn drain_sorts_across_tracks() {
        let sink = Arc::new(CollectingSink::new());
        let mut a = SpanRecorder::on(1, sink.clone());
        let mut b = SpanRecorder::on(0, sink.clone());
        a.record("task", 0, 1);
        b.record("task", 2, 3);
        a.flush();
        b.flush();
        let events = sink.drain();
        assert_eq!(events[0].track, 0);
        assert_eq!(events[1].track, 1);
    }

    #[cfg(feature = "compile-out")]
    #[test]
    fn compile_out_disables_on() {
        let sink = Arc::new(CollectingSink::new());
        let mut r = SpanRecorder::on(0, sink.clone());
        assert!(!r.is_on());
        r.record("task", 0, 1);
        r.flush();
        assert!(sink.is_empty());
    }
}
