//! Critical-path and blame attribution over profiling event streams.
//!
//! The paper's overhead-decomposition experiment (e7) answers *where
//! does each execution model lose time* from aggregate counters. This
//! module recomputes that decomposition from real events: given the
//! per-worker [`ProfEvent`] streams captured by the
//! [`ring`](crate::ring) layer (or emitted in virtual time by the
//! simulator), it reconstructs per-worker timelines and splits each
//! worker's share of wall time into five blame categories —
//!
//! * **compute** — inside task bodies (`TaskStart`→`TaskEnd`),
//! * **counter** — shared-counter fetch round trips
//!   (`CounterFetchStart`→`CounterFetchEnd`),
//! * **steal** — hunts for work that end in a successful steal
//!   (`IdleStart`→`StealSuccess`): the price of moving a task,
//! * **merge** — pairwise reduction-tree merges
//!   (`MergeStart`→`MergeEnd`),
//! * **validate** — speculative read-set validation
//!   (`ValidateStart`→`ValidateEnd`), with `Abort`/`Commit` point
//!   events tallied alongside so speculation waste is visible,
//! * **idle** — everything else: hunts that end in exhaustion, startup
//!   and shutdown gaps, waiting at the implicit end barrier.
//!
//! Idle is the complement of the measured categories inside the
//! harness-measured wall time, so per worker the five categories sum to
//! wall *exactly* — unless the measured categories themselves exceed
//! wall, which is the inconsistency [`WorkerBlame::sum_error`] exposes
//! and the test suite pins below 1% for every roster policy.
//!
//! The **critical path** is the longest dependency chain through the
//! run DAG: task bodies chained in execution order per worker, joined by
//! the deterministic pairwise reduction tree's merge edges (merge of
//! slot *j* into slot *i* depends on both workers' chains). Idle and
//! hunt time never extend the path — it is the classic lower bound on
//! achievable wall time, and `wall − critical_path` is scheduling slack.

use crate::json::Json;
use crate::ring::{EventKind, ProfEvent, RingSet};

/// One worker's share of wall time, split into blame categories (all in
/// nanoseconds), plus its event tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerBlame {
    /// Worker index within the run.
    pub worker: usize,
    /// Time inside task bodies.
    pub compute_ns: u64,
    /// Time in shared-counter fetch round trips.
    pub counter_ns: u64,
    /// Time hunting for work when the hunt ended in a successful steal.
    pub steal_ns: u64,
    /// Time merging reduction-tree partials.
    pub merge_ns: u64,
    /// Time validating speculative read sets.
    pub validate_ns: u64,
    /// Complement: exhausted hunts, startup/shutdown gaps, end barrier.
    pub idle_ns: u64,
    /// Tasks completed.
    pub tasks: u64,
    /// Steal probes issued.
    pub steal_attempts: u64,
    /// Steal probes that succeeded.
    pub steals: u64,
    /// Speculative executions this worker aborted (validation failed).
    pub aborts: u64,
    /// Speculative executions this worker saw become final.
    pub commits: u64,
}

impl WorkerBlame {
    /// Sum of all six blame categories.
    pub fn total_ns(&self) -> u64 {
        self.measured_ns() + self.idle_ns
    }

    /// Sum of the *measured* categories (everything but idle).
    pub fn measured_ns(&self) -> u64 {
        self.compute_ns + self.counter_ns + self.steal_ns + self.merge_ns + self.validate_ns
    }

    /// Relative error of the sums-to-wall invariant for this worker:
    /// `|total − wall| / wall` (0 when wall is 0). Non-zero only when
    /// the measured categories overran the harness wall measurement.
    pub fn sum_error(&self, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            return 0.0;
        }
        (self.total_ns() as f64 - wall_ns as f64).abs() / wall_ns as f64
    }
}

/// The full attribution of one run: per-worker blame, the critical path
/// and capture-quality accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Scheduling policy name (`PolicyKind::name()` or a sim label).
    pub policy: String,
    /// Harness-measured wall time of the attributed region in ns
    /// (including the reduction merges).
    pub wall_ns: u64,
    /// One entry per worker.
    pub workers: Vec<WorkerBlame>,
    /// Longest dependency chain (task bodies + merge tree) in ns.
    pub critical_path_ns: u64,
    /// Nodes on that chain.
    pub critical_path_nodes: u64,
    /// Events lost to ring overwrite (0 ⇒ the attribution saw the whole
    /// run; non-zero windows under-count the measured categories).
    pub overwritten: u64,
}

impl Attribution {
    /// Builds the attribution from per-worker event streams (each
    /// oldest-first, as [`RingSet::events_per_worker`] and
    /// the simulator emit them) and the harness-measured wall time.
    pub fn build(policy: &str, wall_ns: u64, events: &[Vec<ProfEvent>]) -> Attribution {
        Attribution::build_with_losses(policy, wall_ns, events, 0)
    }

    /// [`Attribution::build`] recording how many events were lost to
    /// ring overwrite before the surviving window.
    pub fn build_with_losses(
        policy: &str,
        wall_ns: u64,
        events: &[Vec<ProfEvent>],
        overwritten: u64,
    ) -> Attribution {
        let workers: Vec<WorkerBlame> = events
            .iter()
            .enumerate()
            .map(|(w, stream)| blame_worker(w, stream, wall_ns))
            .collect();
        let (critical_path_ns, critical_path_nodes) = critical_path(events);
        Attribution {
            policy: policy.to_string(),
            wall_ns,
            workers,
            critical_path_ns,
            critical_path_nodes,
            overwritten,
        }
    }

    /// Convenience: attribution straight from a run's ring set.
    pub fn from_rings(policy: &str, wall_ns: u64, rings: &RingSet) -> Attribution {
        let snaps = rings.snapshot_all();
        let overwritten = snaps.iter().map(|s| s.overwritten).sum();
        let events: Vec<Vec<ProfEvent>> = snaps.into_iter().map(|s| s.events).collect();
        Attribution::build_with_losses(policy, wall_ns, &events, overwritten)
    }

    /// Aggregate blame over all workers (the `worker` field is the
    /// worker count).
    pub fn totals(&self) -> WorkerBlame {
        let mut t = WorkerBlame {
            worker: self.workers.len(),
            ..WorkerBlame::default()
        };
        for w in &self.workers {
            t.compute_ns += w.compute_ns;
            t.counter_ns += w.counter_ns;
            t.steal_ns += w.steal_ns;
            t.merge_ns += w.merge_ns;
            t.validate_ns += w.validate_ns;
            t.idle_ns += w.idle_ns;
            t.tasks += w.tasks;
            t.steal_attempts += w.steal_attempts;
            t.steals += w.steals;
            t.aborts += w.aborts;
            t.commits += w.commits;
        }
        t
    }

    /// Worst per-worker sums-to-wall error (see [`WorkerBlame::sum_error`]).
    pub fn max_sum_error(&self) -> f64 {
        self.workers
            .iter()
            .map(|w| w.sum_error(self.wall_ns))
            .fold(0.0, f64::max)
    }

    /// `critical_path / wall` — 1.0 means the run is dependency-bound,
    /// lower means scheduling slack remains.
    pub fn critical_path_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.critical_path_ns as f64 / self.wall_ns as f64
    }

    /// Serializes for stamping (baselines, `BENCH_obs.json`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("policy", Json::Str(self.policy.clone())),
            ("wall_ns", Json::Num(self.wall_ns as f64)),
            ("critical_path_ns", Json::Num(self.critical_path_ns as f64)),
            (
                "critical_path_nodes",
                Json::Num(self.critical_path_nodes as f64),
            ),
            ("overwritten", Json::Num(self.overwritten as f64)),
            (
                "workers",
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("worker", Json::Num(w.worker as f64)),
                                ("compute_ns", Json::Num(w.compute_ns as f64)),
                                ("counter_ns", Json::Num(w.counter_ns as f64)),
                                ("steal_ns", Json::Num(w.steal_ns as f64)),
                                ("merge_ns", Json::Num(w.merge_ns as f64)),
                                ("validate_ns", Json::Num(w.validate_ns as f64)),
                                ("idle_ns", Json::Num(w.idle_ns as f64)),
                                ("tasks", Json::Num(w.tasks as f64)),
                                ("steal_attempts", Json::Num(w.steal_attempts as f64)),
                                ("steals", Json::Num(w.steals as f64)),
                                ("aborts", Json::Num(w.aborts as f64)),
                                ("commits", Json::Num(w.commits as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a stamped attribution back (for differential runs against
    /// a baseline file). Returns `None` on shape mismatch.
    pub fn from_json(v: &Json) -> Option<Attribution> {
        let num = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64);
        let workers = v
            .get("workers")?
            .as_arr()?
            .iter()
            .map(|w| {
                Some(WorkerBlame {
                    worker: num(w, "worker")? as usize,
                    compute_ns: num(w, "compute_ns")? as u64,
                    counter_ns: num(w, "counter_ns")? as u64,
                    steal_ns: num(w, "steal_ns")? as u64,
                    merge_ns: num(w, "merge_ns")? as u64,
                    // Speculation fields postdate stamped baselines;
                    // default them so old BENCH_obs.json files parse.
                    validate_ns: num(w, "validate_ns").unwrap_or(0.0) as u64,
                    idle_ns: num(w, "idle_ns")? as u64,
                    tasks: num(w, "tasks")? as u64,
                    steal_attempts: num(w, "steal_attempts")? as u64,
                    steals: num(w, "steals")? as u64,
                    aborts: num(w, "aborts").unwrap_or(0.0) as u64,
                    commits: num(w, "commits").unwrap_or(0.0) as u64,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Attribution {
            policy: v.get("policy")?.as_str()?.to_string(),
            wall_ns: num(v, "wall_ns")? as u64,
            workers,
            critical_path_ns: num(v, "critical_path_ns")? as u64,
            critical_path_nodes: num(v, "critical_path_nodes")? as u64,
            overwritten: num(v, "overwritten")? as u64,
        })
    }

    /// Renders the attribution as a fixed-width text table (the
    /// `reproduce profile` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "policy {}: wall {:.3} ms, critical path {:.3} ms ({:.1}% of wall), {} events lost\n",
            self.policy,
            self.wall_ns as f64 / 1e6,
            self.critical_path_ns as f64 / 1e6,
            100.0 * self.critical_path_fraction(),
            self.overwritten,
        ));
        out.push_str(
            "  worker  compute%  counter%   steal%   merge%  validate%    idle%    tasks  attempts  steals  aborts\n",
        );
        let pct = |ns: u64| {
            if self.wall_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / self.wall_ns as f64
            }
        };
        for w in &self.workers {
            out.push_str(&format!(
                "  {:>6}  {:>8.2}  {:>8.2}  {:>7.2}  {:>7.2}  {:>9.2}  {:>7.2}  {:>7}  {:>8}  {:>6}  {:>6}\n",
                w.worker,
                pct(w.compute_ns),
                pct(w.counter_ns),
                pct(w.steal_ns),
                pct(w.merge_ns),
                pct(w.validate_ns),
                pct(w.idle_ns),
                w.tasks,
                w.steal_attempts,
                w.steals,
                w.aborts,
            ));
        }
        out
    }
}

/// Folds one worker's event stream into its blame breakdown.
fn blame_worker(worker: usize, stream: &[ProfEvent], wall_ns: u64) -> WorkerBlame {
    let mut b = WorkerBlame {
        worker,
        ..WorkerBlame::default()
    };
    let mut task_open: Option<u64> = None;
    let mut fetch_open: Option<u64> = None;
    let mut merge_open: Option<u64> = None;
    let mut validate_open: Option<u64> = None;
    let mut hunt_open: Option<u64> = None;
    for e in stream {
        match e.kind {
            EventKind::TaskStart => task_open = Some(e.t_ns),
            EventKind::TaskEnd => {
                if let Some(t0) = task_open.take() {
                    b.compute_ns += e.t_ns.saturating_sub(t0);
                    b.tasks += 1;
                }
            }
            EventKind::CounterFetchStart => fetch_open = Some(e.t_ns),
            EventKind::CounterFetchEnd => {
                if let Some(t0) = fetch_open.take() {
                    b.counter_ns += e.t_ns.saturating_sub(t0);
                }
            }
            EventKind::MergeStart => merge_open = Some(e.t_ns),
            EventKind::MergeEnd => {
                if let Some(t0) = merge_open.take() {
                    b.merge_ns += e.t_ns.saturating_sub(t0);
                }
            }
            EventKind::ValidateStart => validate_open = Some(e.t_ns),
            EventKind::ValidateEnd => {
                if let Some(t0) = validate_open.take() {
                    b.validate_ns += e.t_ns.saturating_sub(t0);
                }
            }
            EventKind::Abort => b.aborts += 1,
            EventKind::Commit => b.commits += 1,
            EventKind::IdleStart => hunt_open = Some(e.t_ns),
            EventKind::StealAttempt => b.steal_attempts += 1,
            EventKind::StealSuccess => {
                b.steals += 1;
                if let Some(t0) = hunt_open.take() {
                    b.steal_ns += e.t_ns.saturating_sub(t0);
                }
            }
            // A failed probe is a point event inside the hunt; the hunt
            // keeps running until success or exhaustion.
            EventKind::StealFail => {}
            // Exhausted hunts land in the idle complement below.
            EventKind::IdleEnd => {
                hunt_open = None;
            }
        }
    }
    b.idle_ns = wall_ns.saturating_sub(b.measured_ns());
    b
}

/// Longest dependency chain through the run DAG: per-worker task chains
/// joined by the pairwise reduction tree. Returns `(length_ns, nodes)`.
fn critical_path(events: &[Vec<ProfEvent>]) -> (u64, u64) {
    let n = events.len();
    // Chain state per worker: (critical length ending at its last node,
    // nodes on that chain).
    let mut cpl = vec![(0u64, 0u64); n];
    // Merges must be applied in dependency order; the stride-doubling
    // tree records them with globally increasing timestamps, so sorting
    // merge intervals by start time recovers the order.
    let mut merges: Vec<(u64, u64, usize, usize)> = Vec::new(); // (t0, dur, acc, other)
    for (w, stream) in events.iter().enumerate() {
        let mut task_open: Option<u64> = None;
        let mut merge_open: Option<(u64, u64)> = None; // (t0, other)
        for e in stream {
            match e.kind {
                EventKind::TaskStart => task_open = Some(e.t_ns),
                EventKind::TaskEnd => {
                    if let Some(t0) = task_open.take() {
                        cpl[w].0 += e.t_ns.saturating_sub(t0);
                        cpl[w].1 += 1;
                    }
                }
                EventKind::MergeStart => merge_open = Some((e.t_ns, e.arg)),
                EventKind::MergeEnd => {
                    if let Some((t0, other)) = merge_open.take() {
                        merges.push((t0, e.t_ns.saturating_sub(t0), w, other as usize));
                    }
                }
                _ => {}
            }
        }
    }
    merges.sort_unstable_by_key(|&(t0, ..)| t0);
    for (_, dur, acc, other) in merges {
        if acc >= n || other >= n {
            continue;
        }
        let joined = cpl[acc].0.max(cpl[other].0);
        let nodes = if cpl[acc].0 >= cpl[other].0 {
            cpl[acc].1
        } else {
            cpl[other].1
        };
        cpl[acc] = (joined + dur, nodes + 1);
    }
    cpl.into_iter().max().unwrap_or((0, 0))
}

/// Per-category deltas between two attributions (B relative to A).
#[derive(Debug, Clone)]
pub struct AttributionDiff {
    /// Baseline run label.
    pub a_policy: String,
    /// Comparison run label.
    pub b_policy: String,
    /// Wall times of A and B in ns.
    pub wall_ns: (u64, u64),
    /// `(category, a_total_ns, b_total_ns)` for the five blame
    /// categories, in fixed order.
    pub categories: Vec<(&'static str, u64, u64)>,
    /// Per-worker total deltas `b_total − a_total` in ns (present only
    /// when both runs used the same worker count).
    pub per_worker_delta_ns: Option<Vec<i64>>,
}

impl AttributionDiff {
    /// Compares run B against baseline run A.
    pub fn between(a: &Attribution, b: &Attribution) -> AttributionDiff {
        let (ta, tb) = (a.totals(), b.totals());
        let categories = vec![
            ("compute", ta.compute_ns, tb.compute_ns),
            ("counter", ta.counter_ns, tb.counter_ns),
            ("steal", ta.steal_ns, tb.steal_ns),
            ("merge", ta.merge_ns, tb.merge_ns),
            ("validate", ta.validate_ns, tb.validate_ns),
            ("idle", ta.idle_ns, tb.idle_ns),
        ];
        let per_worker_delta_ns = (a.workers.len() == b.workers.len()).then(|| {
            a.workers
                .iter()
                .zip(&b.workers)
                .map(|(wa, wb)| wb.total_ns() as i64 - wa.total_ns() as i64)
                .collect()
        });
        AttributionDiff {
            a_policy: a.policy.clone(),
            b_policy: b.policy.clone(),
            wall_ns: (a.wall_ns, b.wall_ns),
            categories,
            per_worker_delta_ns,
        }
    }

    /// Renders the differential report as text: wall delta, then one
    /// line per category with both totals and the signed delta.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let (wa, wb) = self.wall_ns;
        out.push_str(&format!(
            "diff {} -> {}: wall {:.3} ms -> {:.3} ms ({:+.1}%)\n",
            self.a_policy,
            self.b_policy,
            wa as f64 / 1e6,
            wb as f64 / 1e6,
            rel_delta(wa, wb),
        ));
        out.push_str("  category      A(ms)      B(ms)    delta(ms)   delta%\n");
        for (name, a, b) in &self.categories {
            out.push_str(&format!(
                "  {:<8}  {:>9.3}  {:>9.3}  {:>+11.3}  {:>+7.1}\n",
                name,
                *a as f64 / 1e6,
                *b as f64 / 1e6,
                (*b as f64 - *a as f64) / 1e6,
                rel_delta(*a, *b),
            ));
        }
        if let Some(per) = &self.per_worker_delta_ns {
            out.push_str("  per-worker total delta (ms):");
            for d in per {
                out.push_str(&format!(" {:+.3}", *d as f64 / 1e6));
            }
            out.push('\n');
        }
        out
    }
}

fn rel_delta(a: u64, b: u64) -> f64 {
    if a == 0 {
        if b == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (b as f64 - a as f64) / a as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, arg: u64, t_ns: u64) -> ProfEvent {
        ProfEvent { kind, arg, t_ns }
    }

    /// Two workers, one steal, a counter fetch and one merge: the
    /// categories land where the events say and idle is the exact
    /// complement.
    #[test]
    fn blame_categories_sum_to_wall_exactly() {
        let w0 = vec![
            ev(EventKind::TaskStart, 0, 0),
            ev(EventKind::TaskEnd, 0, 40),
            ev(EventKind::CounterFetchStart, 0, 40),
            ev(EventKind::CounterFetchEnd, 1, 45),
            ev(EventKind::TaskStart, 1, 45),
            ev(EventKind::TaskEnd, 1, 80),
            ev(EventKind::MergeStart, 1, 90),
            ev(EventKind::MergeEnd, 1, 100),
        ];
        let w1 = vec![
            ev(EventKind::TaskStart, 2, 0),
            ev(EventKind::TaskEnd, 2, 30),
            ev(EventKind::IdleStart, 0, 30),
            ev(EventKind::StealAttempt, 0, 35),
            ev(EventKind::StealSuccess, 0, 42),
            ev(EventKind::TaskStart, 3, 42),
            ev(EventKind::TaskEnd, 3, 70),
            ev(EventKind::IdleStart, 0, 70),
            ev(EventKind::IdleEnd, 0, 85),
        ];
        let a = Attribution::build("test", 100, &[w0, w1]);
        let b0 = &a.workers[0];
        assert_eq!(b0.compute_ns, 75);
        assert_eq!(b0.counter_ns, 5);
        assert_eq!(b0.merge_ns, 10);
        assert_eq!(b0.idle_ns, 10);
        assert_eq!(b0.tasks, 2);
        let b1 = &a.workers[1];
        assert_eq!(b1.compute_ns, 58);
        assert_eq!(b1.steal_ns, 12);
        assert_eq!(b1.idle_ns, 30, "exhausted hunt folds into idle");
        assert_eq!(b1.steal_attempts, 1);
        assert_eq!(b1.steals, 1);
        for w in &a.workers {
            assert_eq!(w.total_ns(), 100);
            assert_eq!(w.sum_error(100), 0.0);
        }
        assert_eq!(a.max_sum_error(), 0.0);
    }

    /// Critical path: the merge joins both chains, so the path is the
    /// longer chain plus the merge duration — not the sum of chains.
    #[test]
    fn critical_path_joins_chains_through_merges() {
        let w0 = vec![
            ev(EventKind::TaskStart, 0, 0),
            ev(EventKind::TaskEnd, 0, 40), // chain 40
            ev(EventKind::MergeStart, 1, 60),
            ev(EventKind::MergeEnd, 1, 70), // join with w1, +10
        ];
        let w1 = vec![
            ev(EventKind::TaskStart, 1, 0),
            ev(EventKind::TaskEnd, 1, 55), // chain 55 (longer)
        ];
        let a = Attribution::build("test", 80, &[w0, w1]);
        assert_eq!(a.critical_path_ns, 65, "max(40, 55) + 10");
        assert_eq!(a.critical_path_nodes, 2, "w1's task, then the merge");
        assert!((a.critical_path_fraction() - 65.0 / 80.0).abs() < 1e-12);
    }

    /// A four-worker pairwise tree: merges apply in timestamp order so
    /// the second-level merge sees the first-level results.
    #[test]
    fn critical_path_pairwise_tree_order() {
        let task = |w: &mut Vec<ProfEvent>, i, t0, t1| {
            w.push(ev(EventKind::TaskStart, i, t0));
            w.push(ev(EventKind::TaskEnd, i, t1));
        };
        let merge = |w: &mut Vec<ProfEvent>, other, t0, t1| {
            w.push(ev(EventKind::MergeStart, other, t0));
            w.push(ev(EventKind::MergeEnd, other, t1));
        };
        let mut w0 = Vec::new();
        let mut w1 = Vec::new();
        let mut w2 = Vec::new();
        let mut w3 = Vec::new();
        task(&mut w0, 0, 0, 10);
        task(&mut w1, 1, 0, 20);
        task(&mut w2, 2, 0, 30);
        task(&mut w3, 3, 0, 40);
        merge(&mut w0, 1, 50, 55); // (0,1): max(10,20)+5 = 25
        merge(&mut w2, 3, 56, 60); // (2,3): max(30,40)+4 = 44
        merge(&mut w0, 2, 61, 68); // (0,2): max(25,44)+7 = 51
        let a = Attribution::build("test", 70, &[w0, w1, w2, w3]);
        assert_eq!(a.critical_path_ns, 51);
        assert_eq!(a.critical_path_nodes, 3, "w3 task, merge(2,3), merge(0,2)");
    }

    #[test]
    fn json_round_trip() {
        let w0 = vec![
            ev(EventKind::TaskStart, 0, 0),
            ev(EventKind::TaskEnd, 0, 40),
        ];
        let a = Attribution::build_with_losses("static-block", 50, &[w0], 3);
        let j = a.to_json();
        let back = Attribution::from_json(&Json::parse(&j.to_json_string()).unwrap()).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.overwritten, 3);
    }

    #[test]
    fn diff_reports_category_and_worker_deltas() {
        let mk = |compute, idle| {
            let w = vec![
                ev(EventKind::TaskStart, 0, 0),
                ev(EventKind::TaskEnd, 0, compute),
            ];
            Attribution::build("p", compute + idle, &[w])
        };
        let a = mk(40, 10);
        let b = mk(60, 20);
        let d = AttributionDiff::between(&a, &b);
        assert_eq!(d.wall_ns, (50, 80));
        assert_eq!(d.categories[0], ("compute", 40, 60));
        assert_eq!(d.categories[5], ("idle", 10, 20));
        assert_eq!(d.per_worker_delta_ns, Some(vec![30]));
        let text = d.render();
        assert!(text.contains("compute"), "{text}");
        assert!(text.contains("+60.0"), "wall +60%: {text}");
    }

    #[test]
    fn render_contains_all_workers_and_policy() {
        let w0 = vec![
            ev(EventKind::TaskStart, 0, 0),
            ev(EventKind::TaskEnd, 0, 40),
        ];
        let a = Attribution::build("guided", 50, &[w0.clone(), w0]);
        let text = a.render();
        assert!(text.contains("policy guided"));
        assert_eq!(text.lines().count(), 4, "header + column row + 2 workers");
    }

    /// Truncated streams (lost starts) must not panic or produce
    /// nonsense: unmatched ends are dropped.
    #[test]
    fn unmatched_events_are_ignored() {
        let w0 = vec![
            ev(EventKind::TaskEnd, 0, 40),      // start was overwritten
            ev(EventKind::StealSuccess, 0, 50), // no hunt open
            ev(EventKind::MergeEnd, 1, 60),
        ];
        let a = Attribution::build_with_losses("ws", 100, &[w0], 5);
        assert_eq!(a.workers[0].compute_ns, 0);
        assert_eq!(a.workers[0].steal_ns, 0);
        assert_eq!(a.workers[0].merge_ns, 0);
        assert_eq!(a.workers[0].idle_ns, 100);
        assert_eq!(a.overwritten, 5);
    }
}
