//! Flamegraph-family exports for profiling event streams: speedscope
//! JSON and Brendan-Gregg collapsed stacks, alongside the existing
//! Chrome trace.
//!
//! Both exporters consume the same per-worker [`ProfEvent`] streams the
//! attribution pipeline takes, so one captured run can be inspected as
//! an attribution table, a Chrome/Perfetto timeline, a speedscope
//! time-ordered view (<https://www.speedscope.app>) or a collapsed-stack
//! flamegraph — no re-capture, no format-specific instrumentation.

use crate::json::Json;
use crate::ring::{EventKind, ProfEvent};

/// One closed interval reconstructed from a worker stream.
struct Interval {
    label: String,
    start_ns: u64,
    end_ns: u64,
}

/// Matches start/end pairs in one worker stream into labeled intervals
/// (in stream order). Unmatched events — a truncated ring window — are
/// dropped rather than guessed at.
fn intervals(stream: &[ProfEvent]) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut task_open: Option<(u64, u64)> = None;
    let mut fetch_open: Option<u64> = None;
    let mut merge_open: Option<(u64, u64)> = None;
    let mut validate_open: Option<(u64, u64)> = None;
    let mut hunt_open: Option<u64> = None;
    for e in stream {
        match e.kind {
            EventKind::TaskStart => task_open = Some((e.arg, e.t_ns)),
            EventKind::TaskEnd => {
                if let Some((task, t0)) = task_open.take() {
                    out.push(Interval {
                        label: format!("task {task}"),
                        start_ns: t0,
                        end_ns: e.t_ns.max(t0),
                    });
                }
            }
            EventKind::CounterFetchStart => fetch_open = Some(e.t_ns),
            EventKind::CounterFetchEnd => {
                if let Some(t0) = fetch_open.take() {
                    out.push(Interval {
                        label: "counter fetch".to_string(),
                        start_ns: t0,
                        end_ns: e.t_ns.max(t0),
                    });
                }
            }
            EventKind::MergeStart => merge_open = Some((e.arg, e.t_ns)),
            EventKind::MergeEnd => {
                if let Some((other, t0)) = merge_open.take() {
                    out.push(Interval {
                        label: format!("merge +{other}"),
                        start_ns: t0,
                        end_ns: e.t_ns.max(t0),
                    });
                }
            }
            EventKind::IdleStart => hunt_open = Some(e.t_ns),
            EventKind::StealSuccess => {
                if let Some(t0) = hunt_open.take() {
                    out.push(Interval {
                        label: "steal hunt".to_string(),
                        start_ns: t0,
                        end_ns: e.t_ns.max(t0),
                    });
                }
            }
            EventKind::IdleEnd => {
                if let Some(t0) = hunt_open.take() {
                    out.push(Interval {
                        label: "idle".to_string(),
                        start_ns: t0,
                        end_ns: e.t_ns.max(t0),
                    });
                }
            }
            EventKind::ValidateStart => validate_open = Some((e.arg, e.t_ns)),
            EventKind::ValidateEnd => {
                if let Some((task, t0)) = validate_open.take() {
                    out.push(Interval {
                        label: format!("validate {task}"),
                        start_ns: t0,
                        end_ns: e.t_ns.max(t0),
                    });
                }
            }
            EventKind::StealAttempt
            | EventKind::StealFail
            | EventKind::Abort
            | EventKind::Commit => {}
        }
    }
    out
}

/// Renders per-worker event streams as a speedscope file (`"evented"`
/// profile type, nanosecond unit, one profile per worker). Load the
/// result directly at <https://www.speedscope.app>.
pub fn speedscope_json(name: &str, events: &[Vec<ProfEvent>]) -> String {
    let mut frames: Vec<String> = Vec::new();
    let frame_index = |label: &str, frames: &mut Vec<String>| -> usize {
        match frames.iter().position(|f| f == label) {
            Some(i) => i,
            None => {
                frames.push(label.to_string());
                frames.len() - 1
            }
        }
    };
    let mut profiles = Vec::new();
    for (w, stream) in events.iter().enumerate() {
        let ivs = intervals(stream);
        let end = ivs.iter().map(|i| i.end_ns).max().unwrap_or(0);
        let mut evs = Vec::with_capacity(ivs.len() * 2);
        for iv in &ivs {
            let f = frame_index(&iv.label, &mut frames) as f64;
            evs.push(Json::obj(vec![
                ("type", Json::Str("O".into())),
                ("frame", Json::Num(f)),
                ("at", Json::Num(iv.start_ns as f64)),
            ]));
            evs.push(Json::obj(vec![
                ("type", Json::Str("C".into())),
                ("frame", Json::Num(f)),
                ("at", Json::Num(iv.end_ns as f64)),
            ]));
        }
        profiles.push(Json::obj(vec![
            ("type", Json::Str("evented".into())),
            ("name", Json::Str(format!("worker {w}"))),
            ("unit", Json::Str("nanoseconds".into())),
            ("startValue", Json::Num(0.0)),
            ("endValue", Json::Num(end as f64)),
            ("events", Json::Arr(evs)),
        ]));
    }
    Json::obj(vec![
        (
            "$schema",
            Json::Str("https://www.speedscope.app/file-format-schema.json".into()),
        ),
        ("name", Json::Str(name.to_string())),
        (
            "shared",
            Json::obj(vec![(
                "frames",
                Json::Arr(
                    frames
                        .into_iter()
                        .map(|f| Json::obj(vec![("name", Json::Str(f))]))
                        .collect(),
                ),
            )]),
        ),
        ("profiles", Json::Arr(profiles)),
        ("activeProfileIndex", Json::Num(0.0)),
        ("exporter", Json::Str("emx-obs".into())),
    ])
    .to_json_string()
}

/// Renders per-worker streams in collapsed-stack format (one
/// `stack;frames count` line per aggregated stack, nanoseconds as the
/// count) — the input `flamegraph.pl` and `inferno` take. Category
/// totals are aggregated per worker so the flame width is the blame
/// breakdown.
pub fn collapsed_stacks(events: &[Vec<ProfEvent>]) -> String {
    let mut out = String::new();
    for (w, stream) in events.iter().enumerate() {
        // Aggregate by category label (task indices fold together —
        // collapsed stacks answer "where did the time go", the
        // per-task view lives in speedscope/Chrome).
        let mut totals: Vec<(&'static str, u64)> = Vec::new();
        let mut add = |cat: &'static str, ns: u64| match totals.iter_mut().find(|(c, _)| *c == cat)
        {
            Some((_, v)) => *v += ns,
            None => totals.push((cat, ns)),
        };
        for iv in intervals(stream) {
            let dur = iv.end_ns - iv.start_ns;
            let cat = if iv.label.starts_with("task") {
                "compute"
            } else if iv.label.starts_with("counter") {
                "counter-fetch"
            } else if iv.label.starts_with("merge") {
                "merge"
            } else if iv.label.starts_with("steal") {
                "steal-hunt"
            } else {
                "idle"
            };
            add(cat, dur);
        }
        for (cat, ns) in totals {
            out.push_str(&format!("worker {w};{cat} {ns}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, arg: u64, t_ns: u64) -> ProfEvent {
        ProfEvent { kind, arg, t_ns }
    }

    fn sample_streams() -> Vec<Vec<ProfEvent>> {
        vec![
            vec![
                ev(EventKind::TaskStart, 0, 0),
                ev(EventKind::TaskEnd, 0, 40),
                ev(EventKind::MergeStart, 1, 50),
                ev(EventKind::MergeEnd, 1, 60),
            ],
            vec![
                ev(EventKind::TaskStart, 1, 0),
                ev(EventKind::TaskEnd, 1, 30),
                ev(EventKind::IdleStart, 0, 30),
                ev(EventKind::StealAttempt, 0, 32),
                ev(EventKind::StealSuccess, 0, 35),
                ev(EventKind::TaskStart, 2, 35),
                ev(EventKind::TaskEnd, 2, 45),
            ],
        ]
    }

    #[test]
    fn speedscope_is_valid_and_balanced() {
        let text = speedscope_json("demo", &sample_streams());
        let v = Json::parse(&text).unwrap();
        assert!(v
            .get("$schema")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("speedscope"));
        let profiles = v.get("profiles").unwrap().as_arr().unwrap();
        assert_eq!(profiles.len(), 2);
        for p in profiles {
            assert_eq!(p.get("type").unwrap().as_str(), Some("evented"));
            assert_eq!(p.get("unit").unwrap().as_str(), Some("nanoseconds"));
            let evs = p.get("events").unwrap().as_arr().unwrap();
            assert!(!evs.is_empty());
            // Balanced: every O has a matching C, `at` non-decreasing.
            let mut depth = 0i64;
            let mut last_at = f64::NEG_INFINITY;
            for e in evs {
                let at = e.get("at").unwrap().as_f64().unwrap();
                assert!(at >= last_at, "at went backwards");
                last_at = at;
                match e.get("type").unwrap().as_str().unwrap() {
                    "O" => depth += 1,
                    "C" => depth -= 1,
                    other => panic!("unexpected event type {other}"),
                }
                assert!(depth >= 0);
            }
            assert_eq!(depth, 0, "unbalanced profile");
            let end = p.get("endValue").unwrap().as_f64().unwrap();
            assert!(end >= last_at);
        }
        // Frames are shared and referenced in range.
        let nframes = v
            .get("shared")
            .unwrap()
            .get("frames")
            .unwrap()
            .as_arr()
            .unwrap()
            .len() as f64;
        for p in profiles {
            for e in p.get("events").unwrap().as_arr().unwrap() {
                assert!(e.get("frame").unwrap().as_f64().unwrap() < nframes);
            }
        }
    }

    #[test]
    fn collapsed_stacks_aggregate_categories() {
        let text = collapsed_stacks(&sample_streams());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"worker 0;compute 40"), "{text}");
        assert!(lines.contains(&"worker 0;merge 10"), "{text}");
        assert!(lines.contains(&"worker 1;compute 40"), "{text}");
        assert!(lines.contains(&"worker 1;steal-hunt 5"), "{text}");
        for l in &lines {
            let (stack, count) = l.rsplit_once(' ').unwrap();
            assert!(stack.contains(';'));
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn truncated_stream_drops_unmatched_events() {
        let stream = vec![
            ev(EventKind::TaskEnd, 9, 10), // lost start
            ev(EventKind::TaskStart, 10, 20),
            ev(EventKind::TaskEnd, 10, 30),
            ev(EventKind::TaskStart, 11, 40), // never ends
        ];
        let text = speedscope_json("t", &[stream]);
        let v = Json::parse(&text).unwrap();
        let evs = v.get("profiles").unwrap().as_arr().unwrap()[0]
            .get("events")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(evs.len(), 2, "only the matched pair survives");
    }
}
