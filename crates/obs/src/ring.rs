//! Per-worker lock-free profiling event rings.
//!
//! The span [`recorder`](crate::recorder) answers "what happened in this
//! run" with worker-local `Vec` buffers — fine for tests, wrong for an
//! always-on profiler, where capture must be bounded, allocation-free
//! after setup and immune to a slow consumer. This module is the
//! production path: one bounded single-producer/single-consumer
//! [`EventRing`] per worker, fixed capacity, overwrite-oldest, cycle
//! timestamps carried by the caller (the runtime reuses the clock reads
//! it already makes for busy accounting; the simulator stamps virtual
//! time), and a seqlock-style slot protocol so a reader may snapshot the
//! ring *while the worker is still writing* without locks, torn events
//! or unsafe code.
//!
//! ## Event schema
//!
//! One [`ProfEvent`] is `(kind, arg, t_ns)`. The same schema is emitted
//! by both substrates — real threads (`emx-runtime`'s pool) and the
//! discrete-event simulator (`emx-distsim`, in virtual nanoseconds) — so
//! one attribution pipeline ([`crate::attrib`]) serves both.
//!
//! | kind                | arg            | marks                          |
//! |---------------------|----------------|--------------------------------|
//! | `TaskStart/TaskEnd` | task index     | task body execution            |
//! | `StealAttempt`      | victim worker  | one steal probe (point event)  |
//! | `StealSuccess`      | victim worker  | probe succeeded, hunt over     |
//! | `StealFail`         | victim worker  | probe failed                   |
//! | `CounterFetchStart/End` | first index fetched | shared-counter round trip |
//! | `IdleStart`         | 0              | out of local work, hunt begins |
//! | `IdleEnd`           | 0              | hunt ends without a steal      |
//! | `MergeStart/MergeEnd` | other slot   | pairwise reduction-tree merge  |
//! | `ValidateStart/End` | task index     | speculative read-set validation |
//! | `Abort`             | task index     | validation failed, re-execute (point) |
//! | `Commit`            | task index     | execution became final (point) |
//!
//! ## Slot protocol
//!
//! Each slot is three `AtomicU64`s: a sequence word and two payload
//! words. Writing event `n` into slot `n % capacity`:
//!
//! 1. `seq ← 2n+1` (odd: in flight),
//! 2. release fence — orders the odd store before the payload stores,
//!    so on weakly-ordered hardware (ARM/POWER) a reader that sees a
//!    new payload word is guaranteed to see the odd sequence too,
//! 3. payload stores,
//! 4. `seq ← 2n+2` (even, Release: event `n` complete).
//!
//! A reader accepts a slot only if it reads `seq == 2n+2` both before
//! and after the payload loads (with an acquire fence between), so an
//! event is returned iff it was completely written and not overwritten
//! mid-read. The ring head counts every event ever recorded; drains
//! report how many were overwritten so analysis can refuse to trust a
//! truncated window.
//!
//! Under `RUSTFLAGS="--cfg loom"` the ring's atomics and fences route
//! through `loom::sync::atomic`, so the loom harnesses
//! (`runtime/tests/loom_rings.rs`) perturb the schedule at every atomic
//! access of this protocol, not just at explicit yields.

#[cfg(loom)]
use loom::sync::atomic::{fence, AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// What a [`ProfEvent`] marks. Stored in the top byte of a packed word;
/// the discriminants are part of the on-ring layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Task body begins (`arg` = task index).
    TaskStart = 1,
    /// Task body ends (`arg` = task index).
    TaskEnd = 2,
    /// One steal probe issued (`arg` = victim worker).
    StealAttempt = 3,
    /// A probe succeeded (`arg` = victim worker).
    StealSuccess = 4,
    /// A probe failed (`arg` = victim worker).
    StealFail = 5,
    /// Shared-counter fetch begins (`arg` = 0; the index is not yet known).
    CounterFetchStart = 6,
    /// Shared-counter fetch returned (`arg` = first index fetched).
    CounterFetchEnd = 7,
    /// Worker ran out of local work (`arg` = 0).
    IdleStart = 8,
    /// Hunt for work ended without a steal — exhaustion or abort (`arg` = 0).
    IdleEnd = 9,
    /// Reduction-tree merge begins (`arg` = the other slot index).
    MergeStart = 10,
    /// Reduction-tree merge ends (`arg` = the other slot index).
    MergeEnd = 11,
    /// Speculative read-set validation begins (`arg` = task index).
    ValidateStart = 12,
    /// Speculative read-set validation ends (`arg` = task index).
    ValidateEnd = 13,
    /// A validation failed and won the abort race: the task's execution
    /// is discarded and it will re-run at the next incarnation
    /// (`arg` = task index; point event).
    Abort = 14,
    /// A task's execution became final under the deterministic commit
    /// rule (`arg` = task index; point event).
    Commit = 15,
}

impl EventKind {
    fn from_u8(b: u8) -> Option<EventKind> {
        Some(match b {
            1 => EventKind::TaskStart,
            2 => EventKind::TaskEnd,
            3 => EventKind::StealAttempt,
            4 => EventKind::StealSuccess,
            5 => EventKind::StealFail,
            6 => EventKind::CounterFetchStart,
            7 => EventKind::CounterFetchEnd,
            8 => EventKind::IdleStart,
            9 => EventKind::IdleEnd,
            10 => EventKind::MergeStart,
            11 => EventKind::MergeEnd,
            12 => EventKind::ValidateStart,
            13 => EventKind::ValidateEnd,
            14 => EventKind::Abort,
            15 => EventKind::Commit,
            _ => return None,
        })
    }

    /// Short stable name (used by exports and tables).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TaskStart => "task_start",
            EventKind::TaskEnd => "task_end",
            EventKind::StealAttempt => "steal_attempt",
            EventKind::StealSuccess => "steal_success",
            EventKind::StealFail => "steal_fail",
            EventKind::CounterFetchStart => "counter_fetch_start",
            EventKind::CounterFetchEnd => "counter_fetch_end",
            EventKind::IdleStart => "idle_start",
            EventKind::IdleEnd => "idle_end",
            EventKind::MergeStart => "merge_start",
            EventKind::MergeEnd => "merge_end",
            EventKind::ValidateStart => "validate_start",
            EventKind::ValidateEnd => "validate_end",
            EventKind::Abort => "abort",
            EventKind::Commit => "commit",
        }
    }
}

/// One profiling event: kind, a 56-bit argument and a timestamp in
/// nanoseconds (real for the thread runtime, virtual for the simulator),
/// measured from the run's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfEvent {
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument (task index, victim, other merge slot).
    pub arg: u64,
    /// Nanoseconds since the run started.
    pub t_ns: u64,
}

/// Arguments wider than 56 bits are clamped on record (task counts and
/// worker ids never approach this).
const ARG_MASK: u64 = (1 << 56) - 1;

fn pack(kind: EventKind, arg: u64) -> u64 {
    ((kind as u64) << 56) | (arg & ARG_MASK)
}

fn unpack(w0: u64, w1: u64) -> Option<ProfEvent> {
    let kind = EventKind::from_u8((w0 >> 56) as u8)?;
    Some(ProfEvent {
        kind,
        arg: w0 & ARG_MASK,
        t_ns: w1,
    })
}

struct Slot {
    seq: AtomicU64,
    w0: AtomicU64,
    w1: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            w0: AtomicU64::new(0),
            w1: AtomicU64::new(0),
        }
    }
}

/// A bounded single-producer/single-consumer profiling ring.
///
/// One worker writes through a [`RingWriter`]; any thread may
/// [`snapshot`](EventRing::snapshot) concurrently. Capacity is rounded
/// up to a power of two at construction and never reallocated; once
/// full, each new event overwrites the oldest.
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Total events ever recorded (monotonic; not reset by snapshots).
    head: AtomicU64,
}

impl EventRing {
    /// A ring holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 2). All allocation happens here.
    pub fn new(capacity: usize) -> Arc<EventRing> {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::empty()).collect();
        Arc::new(EventRing {
            slots: slots.into_boxed_slice(),
            mask: (cap as u64) - 1,
            head: AtomicU64::new(0),
        })
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded into this ring.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// A producer handle starting at the current head. Single-producer
    /// discipline: at most one live writer at a time (sequential handoff
    /// — e.g. worker thread, then the merge phase on the main thread —
    /// is fine).
    pub fn writer(self: &Arc<EventRing>) -> RingWriter {
        RingWriter {
            next: self.head.load(Ordering::Acquire),
            ring: Arc::clone(self),
        }
    }

    /// Snapshots the ring: the most recent `min(recorded, capacity)`
    /// events oldest-first, plus the number of older events already
    /// overwritten. Safe while the producer is still writing — slots
    /// caught mid-write are skipped, never torn.
    ///
    /// Protocol `seqlock-ring` role `reader` (docs/protocols.toml),
    /// paired with the writer's Release side.
    pub fn snapshot(&self) -> RingSnapshot {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - start) as usize);
        for n in start..head {
            let slot = &self.slots[(n & self.mask) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * n + 2 {
                continue; // in flight or already overwritten
            }
            let w0 = slot.w0.load(Ordering::Relaxed);
            let w1 = slot.w1.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten mid-read
            }
            if let Some(e) = unpack(w0, w1) {
                events.push(e);
            }
        }
        RingSnapshot {
            events,
            overwritten: start,
        }
    }
}

/// Result of [`EventRing::snapshot`].
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// Surviving events, oldest first.
    pub events: Vec<ProfEvent>,
    /// Events recorded before the oldest surviving slot (lost to
    /// overwrite). Non-zero means the window is truncated.
    pub overwritten: u64,
}

/// The single producer's handle to an [`EventRing`]. Records one event
/// with three atomic stores and no allocation; the slot index is derived
/// from a writer-local counter, so the hot path performs no atomic RMW.
pub struct RingWriter {
    ring: Arc<EventRing>,
    next: u64,
}

impl RingWriter {
    /// Records one event. Never blocks, never allocates; overwrites the
    /// oldest event once the ring is full.
    ///
    /// Protocol `seqlock-ring` role `writer` (docs/protocols.toml):
    /// the exact store/fence sequence below is pinned by the manifest
    /// and checked by `cargo xtask lint`.
    #[inline]
    pub fn record(&mut self, kind: EventKind, arg: u64, t_ns: u64) {
        let n = self.next;
        self.next = n + 1;
        let slot = &self.ring.slots[(n & self.ring.mask) as usize];
        slot.seq.store(2 * n + 1, Ordering::Relaxed);
        // Pairs with the acquire fence in `snapshot`: a reader that
        // observes either payload store below is guaranteed to observe
        // the odd sequence word on its re-check, so a slot caught
        // mid-overwrite is rejected instead of read torn. Without this
        // fence the payload stores may become visible before the odd
        // store on weakly-ordered hardware (ARM/POWER).
        fence(Ordering::Release);
        slot.w0.store(pack(kind, arg), Ordering::Relaxed);
        slot.w1.store(t_ns, Ordering::Relaxed);
        slot.seq.store(2 * n + 2, Ordering::Release);
        self.ring.head.store(n + 1, Ordering::Release);
    }

    /// The ring this writer feeds.
    pub fn ring(&self) -> &Arc<EventRing> {
        &self.ring
    }
}

/// One ring per worker — the unit the runtime and simulator attach.
pub struct RingSet {
    rings: Vec<Arc<EventRing>>,
}

impl RingSet {
    /// `workers` rings of `capacity` events each (all allocation up
    /// front).
    pub fn new(workers: usize, capacity: usize) -> Arc<RingSet> {
        Arc::new(RingSet {
            rings: (0..workers).map(|_| EventRing::new(capacity)).collect(),
        })
    }

    /// Number of per-worker rings.
    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// The producer handle for `worker`. Panics on an out-of-range
    /// index: callers must size the set to the worker count — wrapping
    /// would silently hand two live workers the same ring and break the
    /// single-producer discipline.
    pub fn writer(&self, worker: usize) -> RingWriter {
        assert!(
            worker < self.rings.len(),
            "worker {worker} out of range for a {}-ring set",
            self.rings.len()
        );
        self.rings[worker].writer()
    }

    /// Per-worker event snapshots, oldest-first within each worker.
    pub fn snapshot_all(&self) -> Vec<RingSnapshot> {
        self.rings.iter().map(|r| r.snapshot()).collect()
    }

    /// Per-worker event vectors (the shape the attribution pipeline
    /// takes), discarding overwrite counts.
    pub fn events_per_worker(&self) -> Vec<Vec<ProfEvent>> {
        self.rings.iter().map(|r| r.snapshot().events).collect()
    }

    /// Total events overwritten across all rings (0 ⇒ complete capture).
    pub fn total_overwritten(&self) -> u64 {
        self.rings.iter().map(|r| r.snapshot().overwritten).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = EventRing::new(16);
        let mut w = ring.writer();
        for i in 0..5u64 {
            w.record(EventKind::TaskStart, i, 10 * i);
            w.record(EventKind::TaskEnd, i, 10 * i + 5);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.overwritten, 0);
        assert_eq!(snap.events.len(), 10);
        assert_eq!(snap.events[0].kind, EventKind::TaskStart);
        assert_eq!(
            snap.events[9],
            ProfEvent {
                kind: EventKind::TaskEnd,
                arg: 4,
                t_ns: 45,
            }
        );
        let ts: Vec<u64> = snap.events.iter().map(|e| e.t_ns).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "snapshot preserves record order");
    }

    #[test]
    fn wraparound_overwrites_oldest_and_counts_losses() {
        let ring = EventRing::new(8); // exact power of two
        let mut w = ring.writer();
        for i in 0..20u64 {
            w.record(EventKind::StealAttempt, i, i);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.overwritten, 12, "20 recorded into 8 slots");
        assert_eq!(snap.events.len(), 8);
        let args: Vec<u64> = snap.events.iter().map(|e| e.arg).collect();
        assert_eq!(
            args,
            (12..20).collect::<Vec<_>>(),
            "newest 8 survive, oldest first"
        );
        assert_eq!(ring.recorded(), 20);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::new(0).capacity(), 2);
        assert_eq!(EventRing::new(3).capacity(), 4);
        assert_eq!(EventRing::new(1024).capacity(), 1024);
        assert_eq!(EventRing::new(1025).capacity(), 2048);
    }

    #[test]
    fn arg_wider_than_56_bits_is_clamped_not_corrupting_kind() {
        let ring = EventRing::new(4);
        let mut w = ring.writer();
        w.record(EventKind::MergeEnd, u64::MAX, 7);
        let snap = ring.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, EventKind::MergeEnd);
        assert_eq!(snap.events[0].arg, ARG_MASK);
        assert_eq!(snap.events[0].t_ns, 7);
    }

    #[test]
    fn writer_handoff_continues_the_sequence() {
        let ring = EventRing::new(8);
        {
            let mut w = ring.writer();
            w.record(EventKind::TaskStart, 0, 0);
        }
        let mut w2 = ring.writer();
        w2.record(EventKind::TaskEnd, 0, 1);
        let snap = ring.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[1].kind, EventKind::TaskEnd);
    }

    #[test]
    fn snapshot_while_writing_never_tears() {
        // A writer loops recording (i, 2*i) pairs while a reader
        // snapshots continuously: every surviving event must satisfy
        // t_ns == 2*arg — a torn slot would break the pairing.
        use std::sync::atomic::AtomicBool;
        let ring = EventRing::new(8);
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut w = ring.writer();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    w.record(EventKind::TaskStart, i, 2 * i);
                    i += 1;
                }
            })
        };
        for _ in 0..2000 {
            let snap = ring.snapshot();
            for e in &snap.events {
                assert_eq!(e.t_ns, 2 * e.arg, "torn event: {e:?}");
            }
            // Events are in record order within one snapshot.
            for pair in snap.events.windows(2) {
                assert!(pair[0].arg < pair[1].arg);
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn ring_set_routes_writers_and_snapshots_per_worker() {
        let set = RingSet::new(3, 16);
        for wkr in 0..3usize {
            let mut w = set.writer(wkr);
            w.record(EventKind::TaskStart, wkr as u64, 0);
        }
        let per = set.events_per_worker();
        assert_eq!(per.len(), 3);
        for (wkr, events) in per.iter().enumerate() {
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].arg, wkr as u64);
        }
        assert_eq!(set.total_overwritten(), 0);
    }
}
