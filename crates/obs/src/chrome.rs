//! Chrome trace-event JSON export (`chrome://tracing` / Perfetto).
//!
//! Builds the "JSON Array with metadata" flavour of the trace-event
//! format: one process per source (runtime, simulator, SCF), one thread
//! track per worker, complete (`"ph":"X"`) events with microsecond
//! timestamps. Events are sorted by timestamp at export, so `ts` is
//! monotonic across the file — some viewers require it.

use crate::json::Json;
use crate::recorder::SpanEvent;
use std::collections::BTreeMap;

/// One complete ("X") trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Process id (groups tracks in the viewer).
    pub pid: u32,
    /// Thread id (one per worker/rank).
    pub tid: u32,
    /// Event name shown on the slice.
    pub name: String,
    /// Category string (filterable in the viewer).
    pub cat: String,
    /// Start in microseconds from the trace origin.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// Accumulates spans and track names, then serializes to trace JSON.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    spans: Vec<TraceSpan>,
    process_names: BTreeMap<u32, String>,
    thread_names: BTreeMap<(u32, u32), String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Names a process (a top-level group in the viewer).
    pub fn set_process_name(&mut self, pid: u32, name: impl Into<String>) {
        self.process_names.insert(pid, name.into());
    }

    /// Names one thread track.
    pub fn set_thread_name(&mut self, pid: u32, tid: u32, name: impl Into<String>) {
        self.thread_names.insert((pid, tid), name.into());
    }

    /// Adds one complete event.
    pub fn add_span(
        &mut self,
        pid: u32,
        tid: u32,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts_us: f64,
        dur_us: f64,
    ) {
        self.spans.push(TraceSpan {
            pid,
            tid,
            name: name.into(),
            cat: cat.into(),
            ts_us,
            dur_us: dur_us.max(0.0),
        });
    }

    /// Adds one busy interval per entry of `intervals` (seconds), the
    /// shape both `ExecutionReport` and `SimReport` traces use. Also
    /// names the track `worker <tid>` if it has no name yet.
    pub fn add_worker_intervals(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        intervals: &[(f64, f64)],
    ) {
        self.thread_names
            .entry((pid, tid))
            .or_insert_with(|| format!("worker {tid}"));
        for &(start_s, end_s) in intervals {
            self.add_span(pid, tid, name, cat, start_s * 1e6, (end_s - start_s) * 1e6);
        }
    }

    /// Adds recorder spans (nanosecond clocks) under `pid`, one track
    /// per `SpanEvent::track`.
    pub fn add_recorder_events(&mut self, pid: u32, events: &[SpanEvent]) {
        for e in events {
            self.thread_names
                .entry((pid, e.track))
                .or_insert_with(|| format!("worker {}", e.track));
            self.add_span(
                pid,
                e.track,
                e.name,
                "span",
                e.start_ns as f64 / 1e3,
                (e.end_ns.saturating_sub(e.start_ns)) as f64 / 1e3,
            );
        }
    }

    /// Number of complete events added so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Serializes to the trace-event JSON object.
    pub fn to_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        // Metadata events first: process and thread names.
        for (pid, name) in &self.process_names {
            events.push(Json::obj(vec![
                ("ph", Json::Str("M".into())),
                ("name", Json::Str("process_name".into())),
                ("pid", Json::Num(*pid as f64)),
                ("tid", Json::Num(0.0)),
                ("args", Json::obj(vec![("name", Json::Str(name.clone()))])),
            ]));
        }
        for ((pid, tid), name) in &self.thread_names {
            events.push(Json::obj(vec![
                ("ph", Json::Str("M".into())),
                ("name", Json::Str("thread_name".into())),
                ("pid", Json::Num(*pid as f64)),
                ("tid", Json::Num(*tid as f64)),
                ("args", Json::obj(vec![("name", Json::Str(name.clone()))])),
            ]));
        }
        // Complete events, sorted so ts is monotonic across the file.
        let mut spans: Vec<&TraceSpan> = self.spans.iter().collect();
        spans.sort_by(|a, b| {
            a.ts_us
                .total_cmp(&b.ts_us)
                .then(a.pid.cmp(&b.pid))
                .then(a.tid.cmp(&b.tid))
        });
        for s in spans {
            events.push(Json::obj(vec![
                ("ph", Json::Str("X".into())),
                ("name", Json::Str(s.name.clone())),
                ("cat", Json::Str(s.cat.clone())),
                ("pid", Json::Num(s.pid as f64)),
                ("tid", Json::Num(s.tid as f64)),
                ("ts", Json::Num(s.ts_us)),
                ("dur", Json::Num(s.dur_us)),
            ]));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ])
    }

    /// Serializes to a JSON string ready to load in Perfetto.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_sorted_and_named() {
        let mut t = ChromeTrace::new();
        t.set_process_name(0, "runtime");
        t.add_worker_intervals(0, 1, "task", "exec", &[(2e-6, 3e-6)]);
        t.add_worker_intervals(0, 0, "task", "exec", &[(0.0, 1e-6)]);
        let v = Json::parse(&t.to_json_string()).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process-name + 2 thread-name + 2 X events.
        assert_eq!(events.len(), 5);
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        // Monotonic ts.
        assert!(xs[0].get("ts").unwrap().as_f64() <= xs[1].get("ts").unwrap().as_f64());
        // One thread-name track per worker.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["worker 0", "worker 1"]);
    }

    #[test]
    fn recorder_events_convert_ns_to_us() {
        let mut t = ChromeTrace::new();
        t.add_recorder_events(
            2,
            &[crate::recorder::SpanEvent {
                name: "steal",
                track: 4,
                start_ns: 3000,
                end_ns: 4500,
            }],
        );
        let v = Json::parse(&t.to_json_string()).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let x = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(x.get("ts").unwrap().as_f64(), Some(3.0));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(1.5));
        assert_eq!(x.get("tid").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn negative_durations_clamped() {
        let mut t = ChromeTrace::new();
        t.add_span(0, 0, "x", "c", 1.0, -5.0);
        assert_eq!(t.spans[0].dur_us, 0.0);
    }
}
