//! Scaling study: execution models on a measured chemistry workload.
//!
//! Reproduces the shape of the paper's headline comparison (E1/E2):
//! task costs are *measured* from a real Fock build on a water cluster,
//! then replayed through the discrete-event simulator at increasing
//! worker counts under every execution model.
//!
//! Run with: `cargo run --release --example scaling_study`

use emx_core::prelude::*;
use emx_distsim::machine::MachineModel;

fn main() {
    // Inspector pass: measure real task costs of one Fock build.
    // Chunk 8 matches the study's standard decomposition — fine enough
    // to keep P=64 supplied with work, coarse enough that static
    // partitions actually suffer the cost skew.
    let mol = Molecule::water_cluster(2, 42);
    let w = measure_fock_workload(&mol, BasisSet::SixThirtyOneG, 8, 1e-10, "(H2O)2/6-31G");
    println!(
        "measured {} tasks, total work {}, cost skew max/mean = {:.1}\n",
        w.ntasks(),
        fmt_secs(w.total()),
        CostStats::from_costs(&w.costs).max_over_mean
    );

    let machine = MachineModel::default();
    println!("{}", e1_scaling(&w, &[1, 2, 4, 8, 16, 32], &machine));

    let h = e2_headline(&w, 16, &machine);
    println!("{}", h.table);
    println!(
        "work stealing at P=16 improves {:.0}% over naive block partitioning \
         and {:.0}% over the best static partition; the paper's ~50% (against \
         its own static baseline) falls between the two readings.",
        (h.vs_block - 1.0) * 100.0,
        (h.vs_best_static - 1.0) * 100.0
    );
}
