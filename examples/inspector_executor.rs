//! Inspector–executor SCF: persistence-based load balancing.
//!
//! The paper's iterative-application play: the first SCF iteration runs
//! a naive static partition with tracing (the *inspector*), every later
//! iteration re-balances from the measured per-task costs (persistence)
//! and runs the tuned static assignment (the *executor*). No dynamic
//! scheduling is needed once the costs are known — this is the execution
//! model that made Global-Arrays codes competitive with work stealing
//! on iteration-stable workloads.
//!
//! Run with: `cargo run --release --example inspector_executor`

use emx_balance::prelude::{movement, rebalance, PersistenceConfig, Problem};
use emx_chem::prelude::*;
use emx_core::prelude::{fmt3, ParallelFock};
use emx_linalg::Matrix;
use std::sync::Arc;

fn main() {
    let bm = BasisedMolecule::assign(&Molecule::water(), BasisSet::SixThirtyOneG);
    let pairs = ScreenedPairs::build(&bm, 1e-12);
    let pf = ParallelFock::new(&bm, &pairs, 1e-10, 8);
    let workers = 2;
    println!(
        "inspector–executor SCF: water/6-31G, {} tasks, {} workers\n",
        pf.ntasks(),
        workers
    );

    // Start from the naive static-block partition.
    let mut assignment: Vec<u32> = (0..pf.ntasks())
        .map(|i| emx_runtime::block_owner(i, pf.ntasks(), workers) as u32)
        .collect();
    let persistence = PersistenceConfig {
        target_imbalance: 1.02,
        max_moves: usize::MAX,
    };

    let cfg = ScfConfig::default();
    let mut iteration = 0usize;
    let mut history: Vec<(usize, f64, f64, usize)> = Vec::new();

    let result = {
        let assignment_ref = &mut assignment;
        let history_ref = &mut history;
        rhf_with(&bm, &cfg, |density: &Matrix| {
            iteration += 1;
            let mut ex = emx_runtime::Executor::new(
                workers,
                emx_runtime::PolicyKind::StaticAssigned(Arc::new(assignment_ref.clone())),
            );
            ex.trace = true;
            let (g, report) = pf.execute(density, &ex);

            // Inspector: measured per-task costs drive the rebalance
            // for the next iteration.
            let costs: Vec<f64> = report
                .task_durations()
                .into_iter()
                .map(|d| d.expect("traced").as_secs_f64())
                .collect();
            let problem = Problem::new(costs, workers);
            let imbalance_before = problem.imbalance(assignment_ref);
            let next = rebalance(&problem, assignment_ref, &persistence);
            let moved = movement(assignment_ref, &next);
            let imbalance_after = problem.imbalance(&next);
            history_ref.push((iteration, imbalance_before, imbalance_after, moved));
            *assignment_ref = next;
            g
        })
    };

    println!("iter  imbalance(run)  imbalance(rebalanced)  migrated");
    println!("------------------------------------------------------");
    for (it, before, after, moved) in &history {
        println!(
            "{it:>4}  {:>14}  {:>21}  {moved:>8}",
            fmt3(*before),
            fmt3(*after)
        );
    }
    println!(
        "\nE = {:.8} Ha in {} iterations (converged: {})",
        result.energy, result.iterations, result.converged
    );
    assert!((result.energy + 75.98).abs() < 0.05);

    let final_q = mulliken_charges(&bm, &result.density);
    println!(
        "Mulliken charges: O {:+.3}, H {:+.3}, {:+.3}",
        final_q[0], final_q[1], final_q[2]
    );
    let mu = dipole_moment(&bm, &result.density);
    let debye = (mu[0] * mu[0] + mu[1] * mu[1] + mu[2] * mu[2]).sqrt() * AU_TO_DEBYE;
    println!("dipole moment: {debye:.3} D");
}
