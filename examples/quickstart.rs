//! Quickstart: Hartree–Fock on water, serial vs work stealing.
//!
//! Demonstrates the core loop of the study in ~30 lines: the same SCF
//! calculation runs under two execution models and produces the same
//! energy, while the execution reports expose how differently the
//! runtime behaved.
//!
//! Run with: `cargo run --release --example quickstart`

use emx_core::prelude::*;

fn main() {
    let molecule = Molecule::water();
    let bm = BasisedMolecule::assign(&molecule, BasisSet::SixThirtyOneG);
    println!(
        "water / 6-31G: {} atoms, {} shells, {} basis functions, {} electrons\n",
        molecule.natoms(),
        bm.nshells(),
        bm.nbf,
        bm.nelectrons()
    );

    let cfg = ScfConfig::default();

    // Serial baseline.
    let serial = Executor::new(1, PolicyKind::Serial);
    let (r_serial, _) = rhf_parallel(&bm, &cfg, &serial, usize::MAX);
    println!(
        "serial:        E = {:.8} Ha in {} iterations (converged: {})",
        r_serial.energy, r_serial.iterations, r_serial.converged
    );

    // Work stealing over 4 workers with chunked tasks.
    let stealing = Executor::new(4, PolicyKind::WorkStealing(StealConfig::default()));
    let (r_ws, reports) = rhf_parallel(&bm, &cfg, &stealing, 8);
    println!(
        "work stealing: E = {:.8} Ha in {} iterations (converged: {})",
        r_ws.energy, r_ws.iterations, r_ws.converged
    );
    assert!(
        (r_serial.energy - r_ws.energy).abs() < 1e-8,
        "models must agree"
    );

    let last = reports.last().expect("at least one iteration");
    println!(
        "\nlast Fock build: {} tasks on {} workers, utilization {:.1}%, {} steals",
        last.tasks,
        last.workers,
        100.0 * last.utilization(),
        last.total_steals()
    );

    // One traced build to visualize where the time goes.
    let pairs = ScreenedPairs::build(&bm, 1e-12);
    let pf = ParallelFock::new(&bm, &pairs, 1e-10, 8);
    let mut traced = Executor::new(4, PolicyKind::WorkStealing(StealConfig::default()));
    traced.trace = true;
    let (_, report) = pf.execute(&r_ws.density, &traced);
    println!("\nwork-stealing timeline (# = in task body):");
    print!("{}", render_timeline(&report, 60));

    println!("\nEnergies agree to machine precision across execution models.");
}
