//! Distributed Fock build on the Global-Arrays substrate.
//!
//! Runs the kernel the way the paper's GA/MPI implementation does:
//! ranks (threads here) self-schedule shell-quartet tasks off a shared
//! NXTVAL counter, accumulate their contributions into a distributed
//! global array with one-sided `acc`, and synchronize with a barrier.
//! The gathered result is verified against the serial build, and the
//! recorded one-sided traffic is priced with the machine model.
//!
//! Run with: `cargo run --release --example distributed_fock`

use emx_chem::prelude::*;
use emx_distsim::prelude::*;
use emx_linalg::Matrix;

fn main() {
    let mol = Molecule::water();
    let bm = BasisedMolecule::assign(&mol, BasisSet::SixThirtyOneG);
    let pairs = ScreenedPairs::build(&bm, 1e-12);
    let builder = FockBuilder::new(&bm, &pairs, 1e-10);
    let tasks = builder.tasks(4);
    let nbf = bm.nbf;

    let mut density = Matrix::from_fn(nbf, nbf, |i, j| 0.4 / (1.0 + (i as f64 - j as f64).abs()));
    density.symmetrize();

    let nranks = 4;
    let chunk = 2u64;
    let fock = GlobalArray::zeros(nbf, nbf, nranks);
    let counter = NxtVal::new();
    let machine = MachineModel::default();

    println!(
        "distributed Fock build: {} tasks over {} ranks (NXTVAL chunk {})",
        tasks.len(),
        nranks,
        chunk
    );

    let (per_rank, traffic) = run_world(nranks, machine, |ctx| {
        let mut local = Matrix::zeros(nbf, nbf);
        let mut scratch = builder.scratch();
        let mut executed = 0usize;
        loop {
            let start = counter.next(chunk) as usize;
            if start >= tasks.len() {
                break;
            }
            for t in &tasks[start..(start + chunk as usize).min(tasks.len())] {
                builder.execute(t, &density, &mut local, &mut scratch);
                executed += 1;
            }
        }
        // One-sided accumulate of the rank's whole contribution block —
        // GA codes batch exactly like this to amortize latency.
        fock.acc(ctx.rank, 0, 0, nbf, nbf, 1.0, local.as_slice());
        ctx.barrier();
        executed
    });

    // Verify against the serial reference.
    let mut g = Matrix::zeros(nbf, nbf);
    g.as_mut_slice().copy_from_slice(&fock.gather());
    let reference = builder.build_serial(&density);
    let diff = g.max_abs_diff(&reference);
    println!("tasks per rank: {per_rank:?}");
    println!("max |G_distributed − G_serial| = {diff:.3e}");
    assert!(diff < 1e-10, "distributed build must match serial");

    let (local_ops, remote_ops, remote_bytes) = fock.traffic();
    println!(
        "GA traffic: {local_ops} local ops, {remote_ops} remote ops, {remote_bytes} remote bytes"
    );
    println!(
        "modeled one-sided communication time: {:.3} us; world messages: {} ({} bytes)",
        fock.modeled_comm_time(&machine) * 1e6,
        traffic.messages,
        traffic.bytes
    );
    println!(
        "NXTVAL issued {} values for {} tasks",
        counter.peek(),
        tasks.len()
    );
}
