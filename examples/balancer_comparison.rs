//! Load-balancer comparison: semi-matching vs hypergraph partitioning.
//!
//! Reproduces the paper's second headline (E3/E4): the novel
//! semi-matching balancer achieves assignment quality comparable to a
//! full multilevel hypergraph partitioner at a fraction of its cost.
//!
//! Run with: `cargo run --release --example balancer_comparison`

use emx_core::prelude::*;

fn main() {
    // Quality on a real chemistry workload (butane keeps the hypergraph
    // partitioner's multi-second appetite in check — its cost curve is
    // the E4 table below).
    let mol = Molecule::alkane(4);
    let w = measure_fock_workload(&mol, BasisSet::Sto3g, 32, 1e-10, "C4H10/STO-3G");
    println!(
        "workload: {} tasks, total {}, Gini {:.2}\n",
        w.ntasks(),
        fmt_secs(w.total()),
        CostStats::from_costs(&w.costs).gini
    );
    println!("{}", e3_balancer_quality(&w, &[4, 8, 16]));

    // Cost vs problem size on synthetic workloads.
    println!("{}", e4_partition_cost(&[1_000, 4_000, 16_000], 16, 7));

    println!(
        "Semi-matching tracks hypergraph quality while its cost grows \
         like LPT's — the paper's conclusion."
    );
}
