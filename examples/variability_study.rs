//! Variability study: execution models under energy-induced core-speed
//! variability.
//!
//! Reproduces the paper's closing observation (E6): on "dynamic
//! platforms with energy-induced performance variability", statically
//! scheduled kernels lose utilization proportionally to the slowest
//! core, while dynamic models route around it.
//!
//! Run with: `cargo run --release --example variability_study`

use emx_chem::synthetic::CostModel;
use emx_core::prelude::*;
use emx_distsim::machine::MachineModel;

fn main() {
    // A uniform workload isolates the variability effect: any slowdown
    // of a static model is pure core-speed imbalance, not task skew.
    let uniform = synthetic_workload(
        CostModel::Uniform { scale: 1.0 },
        4096,
        3,
        4.0,
        "uniform-4096",
    );
    println!("{}", e6_variability(&uniform, 16, &MachineModel::default()));

    // The same scenarios on a skewed chemistry-like workload: dynamic
    // models must absorb both kinds of imbalance at once.
    let skewed = synthetic_workload(
        CostModel::LogNormal {
            mu: 0.0,
            sigma: 1.4,
        },
        4096,
        3,
        4.0,
        "lognormal-4096",
    );
    println!("{}", e6_variability(&skewed, 16, &MachineModel::default()));

    println!(
        "Work stealing's slowdown stays near the theoretical floor \
         (the lost capacity of the slow cores); static scheduling pays \
         the full slowest-core penalty."
    );
}
