//! H₂ dissociation: RHF vs UHF vs MP2 across the bond-breaking curve.
//!
//! The chemistry-side showcase of the kernel extensions: restricted HF
//! fails at dissociation (ionic terms), MP2 on top of it diverges, and
//! unrestricted HF breaks spin symmetry to land exactly on twice the
//! atomic energy. Every number comes from the same integral engine the
//! execution-model study schedules.
//!
//! Run with: `cargo run --release --example dissociation_curve`

use emx_chem::prelude::*;

fn main() {
    println!("H2 / STO-3G dissociation (energies in Hartree)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8}",
        "R/a0", "RHF", "RHF+MP2", "UHF", "<S2>"
    );
    println!("{}", "-".repeat(56));
    let cfg = ScfConfig::default();
    for r in [1.0, 1.4, 2.0, 3.0, 4.0, 6.0, 8.0] {
        let mol = Molecule::h2(r);
        let bm = BasisedMolecule::assign(&mol, BasisSet::Sto3g);
        let rhf_res = rhf(&bm, &cfg);
        assert!(rhf_res.converged);
        let e2 = mp2_energy(&bm, &rhf_res);
        let uhf_res = uhf(&bm, 1, &cfg);
        assert!(uhf_res.converged);
        println!(
            "{r:>6.1} {:>12.6} {:>12.6} {:>12.6} {:>8.3}",
            rhf_res.energy,
            rhf_res.energy + e2,
            uhf_res.energy,
            uhf_res.s_squared
        );
    }
    let atom_limit = 2.0 * -0.46658;
    println!("{}", "-".repeat(56));
    println!("2 x E(H atom, STO-3G) = {atom_limit:.6} — the UHF column converges to it;");
    println!("RHF overshoots by ~0.26 Ha at R = 8 and MP2 cannot repair a broken reference.");
}
